//! Gate fusion: collapse runs of adjacent single-qubit gates on the same
//! wire into one precomputed 2×2 matrix before the statevector sweep, and —
//! at level 2 — absorb CNOT/CZ-adjacent runs into fused 4×4 pair ops.
//!
//! The paper's ansätze emit exactly such runs — an encoding rotation
//! followed by a trainable `Rot` decomposed as `RZ·RY·RZ` puts up to four
//! consecutive single-qubit gates on every wire per layer — so fusing them
//! replaces four full-state sweeps with one. The pass has two halves:
//!
//! * [`FusePlan`] — a **structural** pass over the circuit IR, computed once
//!   per circuit (and shared across a whole batch in
//!   [`crate::Circuit::run_batch`]): which ops collapse into which
//!   single-wire runs or two-wire pairs. Building the plan never looks at
//!   parameter values, so one plan serves every row of a batch.
//! * [`FusePlan::run`] — execution: resolve each segment's angles, multiply
//!   its matrices into one [`Matrix2`] (runs) or [`Matrix4`] (pairs), and
//!   apply it with the amplitude-pair or pair-quad kernel.
//!
//! # Fusion levels
//!
//! `HQNN_FUSE` selects a **level**: `0` (unset/off) applies every gate
//! individually; `1`/`true`/`on` collapses single-qubit runs; `2` also
//! absorbs CNOT/CZ ops and the runs adjacent to them into 4×4 pair ops. A
//! pair segment opens at a CNOT/CZ, swallows the pending runs on its two
//! wires, keeps absorbing single-qubit gates on those wires and further
//! CNOT/CZ on the same pair, and closes when any other op touches one of
//! its wires (or at the end of the circuit). Reordering a pair's ops next
//! to each other is legal because every op between them acts on disjoint
//! wires and therefore commutes. Pairs are only kept where they win: a
//! closing pair whose ops would be cheaper as level-1 runs + direct applies
//! (by per-amplitude multiply count: 2 per collapsed run, 1 per controlled
//! apply, 4 per pair apply) is re-emitted in level-1 form instead.
//!
//! Fusion reassociates floating-point products (`U₃·(U₂·(U₁ψ))` becomes
//! `(U₃U₂U₁)·ψ`), so fused amplitudes differ from the scalar path in the
//! last ulps. It is therefore **opt-in**: enabled by `HQNN_FUSE` in the
//! environment or a scoped [`with_fusion`]/[`with_fusion_level`] override
//! (innermost wins), and benchmarked under its own `bench/baseline.json`
//! entries (`qsim.statevector_evolve_fused`, `qsim.run_batch_fused`,
//! `qsim.run_batch_fused2q`). The fused path is still **deterministic**: a
//! plan is a pure function of the circuit and level, so results are bitwise
//! identical run-to-run and at every thread count —
//! `crates/qsim/tests/batch_determinism.rs` holds it to the same bar as the
//! scalar runtime.
//!
//! Gradient engines never fuse. The adjoint reverse walk and the
//! parameter-shift rule both step gate-by-gate through the original op
//! stream (a fused block would straddle the trainable parameters it has to
//! differentiate), so [`crate::gradient`] pins its forward passes to
//! [`crate::Circuit::run_unfused`] and gradients are bitwise identical
//! whether fusion is enabled or not.

use std::cell::Cell;
use std::sync::OnceLock;

use crate::circuit::{Circuit, Op, Wires};
use crate::gates::{
    embed_controlled, embed_single, matmul2, matmul4, GateKind, Matrix2, Matrix4,
};
use crate::state::StateVector;

thread_local! {
    /// Scoped level override installed by [`with_fusion_level`]
    /// (`None` = no override).
    static OVERRIDE: Cell<Option<u8>> = const { Cell::new(None) };
}

/// The fusion level parsed from `HQNN_FUSE`, read once per process.
/// `1`/`true`/`on` (case-insensitive) select level 1, `2` selects level 2;
/// anything else (or unset) leaves fusion off.
fn env_fuse_level() -> u8 {
    static ENV: OnceLock<u8> = OnceLock::new();
    *ENV.get_or_init(|| {
        hqnn_telemetry::env::var("HQNN_FUSE")
            .map(|raw| hqnn_telemetry::env::parse_fuse_level(&raw))
            .unwrap_or(0)
    })
}

/// The fusion level forward circuit execution uses on the calling thread,
/// resolved as: [`with_fusion_level`] override → `HQNN_FUSE` → 0 (off).
/// Batch entry points resolve this **once on the caller** before fanning
/// rows out, so a scoped override governs the whole batch regardless of
/// which worker thread runs a row.
pub fn fusion_level() -> u8 {
    OVERRIDE.with(Cell::get).unwrap_or_else(env_fuse_level)
}

/// Whether forward circuit execution fuses gates on the calling thread
/// (i.e. [`fusion_level`] ≥ 1).
pub fn fusion_enabled() -> bool {
    fusion_level() >= 1
}

/// Runs `f` with gate fusion pinned on (level 1) or off for the calling
/// thread — the boolean spelling of [`with_fusion_level`], kept for the
/// common case of comparing fused and scalar execution.
pub fn with_fusion<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    with_fusion_level(u8::from(enabled), f)
}

/// Runs `f` with the fusion level pinned for the calling thread (nested
/// calls nest; the previous setting is restored afterwards, also on panic).
/// This is how tests compare fusion tiers inside one process, and how
/// benchmarks force a fused path without touching the environment.
pub fn with_fusion_level<R>(level: u8, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<u8>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(level))));
    f()
}

/// One step of a fused program: a run of single-qubit ops collapsed into
/// one 2×2 apply, a two-wire pair collapsed into one 4×4 apply, or an op
/// passed through unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Segment {
    /// Indices (into `Circuit::ops`) of ≥ 2 single-qubit ops on `wire`,
    /// in application order, applied as one product matrix.
    Run { wire: usize, ops: Vec<usize> },
    /// Indices of ≥ 2 ops on the wire pair `(low, high)` — single-qubit
    /// gates on either wire plus ≥ 1 CNOT/CZ on the pair — applied as one
    /// 4×4 product matrix.
    Pair {
        low: usize,
        high: usize,
        ops: Vec<usize>,
    },
    /// An op applied as-is (unfused two-qubit ops and unfusable singletons).
    Direct(usize),
}

/// A fusion plan for one circuit: the structural result of collapsing every
/// maximal run of adjacent single-qubit gates per wire.
///
/// "Adjacent" is per-wire program order: a run on wire `w` is broken only by
/// a two-qubit op touching `w`. Single-qubit ops on *other* wires commute
/// with the run and do not break it.
///
/// # Example
///
/// ```
/// use hqnn_qsim::{Circuit, FusePlan, ParamSource};
///
/// let mut c = Circuit::new(2);
/// c.rz(0, ParamSource::Fixed(0.3));
/// c.ry(0, ParamSource::Fixed(-0.2));
/// c.rz(0, ParamSource::Fixed(1.1)); // three gates on wire 0 → one apply
/// c.cnot(0, 1);
/// let plan = FusePlan::new(&c);
/// assert_eq!(plan.fused_ops(), 2); // 4 ops execute as 2 segments
/// let fused = plan.run(&c, &[], &[]);
/// assert!(fused.approx_eq(&c.run_unfused(&[], &[]), 1e-12));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusePlan {
    segments: Vec<Segment>,
    n_ops: usize,
}

impl FusePlan {
    /// Builds the plan for `circuit` at the given fusion level: level ≤ 1
    /// collapses single-qubit runs ([`FusePlan::new`]); level ≥ 2 also
    /// absorbs CNOT/CZ-adjacent runs into 4×4 pair segments where the pair
    /// wins on per-amplitude multiply count (see the module docs).
    pub fn with_level(circuit: &Circuit, level: u8) -> Self {
        if level >= 2 {
            Self::new_paired(circuit)
        } else {
            Self::new(circuit)
        }
    }

    /// Builds the level-1 plan for `circuit` with a single linear walk of
    /// its ops.
    pub fn new(circuit: &Circuit) -> Self {
        let ops = circuit.ops();
        // Pending run per wire: op indices accumulated since the wire was
        // last broken by a two-qubit op.
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); circuit.n_qubits()];
        let mut segments = Vec::new();
        let flush = |pending: &mut Vec<usize>, segments: &mut Vec<Segment>, wire: usize| {
            match pending.len() {
                0 => {}
                1 => segments.push(Segment::Direct(pending[0])),
                _ => segments.push(Segment::Run {
                    wire,
                    ops: std::mem::take(pending),
                }),
            }
            pending.clear();
        };
        for (k, op) in ops.iter().enumerate() {
            match op.wires {
                Wires::One(w) => pending[w].push(k),
                Wires::Two(a, b) => {
                    // Flush the blocked wires in the order their runs
                    // started, then pass the two-qubit op through.
                    let (first, second) = if run_start(&pending[a]) <= run_start(&pending[b]) {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    let mut take = std::mem::take(&mut pending[first]);
                    flush(&mut take, &mut segments, first);
                    let mut take = std::mem::take(&mut pending[second]);
                    flush(&mut take, &mut segments, second);
                    segments.push(Segment::Direct(k));
                }
            }
        }
        // Flush the tails, ordered by where each wire's run started.
        let mut tails: Vec<usize> = (0..pending.len())
            .filter(|&w| !pending[w].is_empty())
            .collect();
        tails.sort_unstable_by_key(|&w| run_start(&pending[w]));
        for w in tails {
            let mut take = std::mem::take(&mut pending[w]);
            flush(&mut take, &mut segments, w);
        }
        Self {
            segments,
            n_ops: ops.len(),
        }
    }

    /// Builds the level-2 plan: the level-1 walk extended with pair
    /// accumulators. A CNOT/CZ opens a pair on its wire set (swallowing the
    /// pending single-qubit runs on both wires), single-qubit gates on the
    /// pair's wires and further CNOT/CZ on the same pair extend it, and any
    /// other op touching one of its wires closes it. Closing decides the
    /// final form: the 4×4 pair apply, or the level-1 decomposition when
    /// that is cheaper (see [`pair_wins`]).
    fn new_paired(circuit: &Circuit) -> Self {
        struct PairAcc {
            low: usize,
            high: usize,
            ops: Vec<usize>,
        }
        let ops = circuit.ops();
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); circuit.n_qubits()];
        let mut pairs: Vec<Option<PairAcc>> = Vec::new();
        let mut wire_pair: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
        let mut segments = Vec::new();

        let close_pair = |p: usize,
                          pairs: &mut Vec<Option<PairAcc>>,
                          wire_pair: &mut Vec<Option<usize>>,
                          segments: &mut Vec<Segment>| {
            let Some(acc) = pairs[p].take() else { return };
            wire_pair[acc.low] = None;
            wire_pair[acc.high] = None;
            emit_pair(circuit, acc.low, acc.high, acc.ops, segments);
        };
        // Closes every pair and flushes every pending run touching `wires`,
        // earliest-starting structure first (the deterministic order both
        // the level-1 pass and the tail flush use).
        let close_touching = |wires: &[usize],
                             pending: &mut Vec<Vec<usize>>,
                             pairs: &mut Vec<Option<PairAcc>>,
                             wire_pair: &mut Vec<Option<usize>>,
                             segments: &mut Vec<Segment>| {
            let mut todo: Vec<(usize, bool, usize)> = Vec::new(); // (start, is_pair, id)
            for &w in wires {
                if let Some(p) = wire_pair[w] {
                    let start = pairs[p].as_ref().map_or(usize::MAX, |a| run_start(&a.ops));
                    if !todo.iter().any(|&(_, is_pair, id)| is_pair && id == p) {
                        todo.push((start, true, p));
                    }
                } else if !pending[w].is_empty() {
                    todo.push((run_start(&pending[w]), false, w));
                }
            }
            todo.sort_unstable();
            for (_, is_pair, id) in todo {
                if is_pair {
                    close_pair(id, pairs, wire_pair, segments);
                } else {
                    let take = std::mem::take(&mut pending[id]);
                    flush_run(take, id, segments);
                }
            }
        };

        for (k, op) in ops.iter().enumerate() {
            match op.wires {
                Wires::One(w) => {
                    if let Some(p) = wire_pair[w] {
                        // lint:allow(panic): wire_pair only points at open accumulators
                        pairs[p].as_mut().expect("open pair").ops.push(k);
                    } else {
                        pending[w].push(k);
                    }
                }
                Wires::Two(a, b) if matches!(op.kind, GateKind::Cnot | GateKind::Cz) => {
                    if let (Some(pa), Some(pb)) = (wire_pair[a], wire_pair[b]) {
                        if pa == pb {
                            // lint:allow(panic): wire_pair only points at open accumulators
                            pairs[pa].as_mut().expect("open pair").ops.push(k);
                            continue;
                        }
                    }
                    // A different pair (or none) is open on these wires:
                    // close whatever the op touches, then open a fresh pair
                    // seeded with the pending runs it swallows.
                    let mut close: Vec<usize> = Vec::new();
                    for &w in &[a, b] {
                        if let Some(p) = wire_pair[w] {
                            if !close.contains(&p) {
                                close.push(p);
                            }
                        }
                    }
                    close.sort_unstable_by_key(|&p| {
                        pairs[p].as_ref().map_or(usize::MAX, |acc| run_start(&acc.ops))
                    });
                    for p in close {
                        close_pair(p, &mut pairs, &mut wire_pair, &mut segments);
                    }
                    let mut acc_ops = merge_sorted(
                        std::mem::take(&mut pending[a]),
                        std::mem::take(&mut pending[b]),
                    );
                    acc_ops.push(k);
                    wire_pair[a] = Some(pairs.len());
                    wire_pair[b] = Some(pairs.len());
                    pairs.push(Some(PairAcc {
                        low: a.min(b),
                        high: a.max(b),
                        ops: acc_ops,
                    }));
                }
                Wires::Two(a, b) => {
                    close_touching(
                        &[a, b],
                        &mut pending,
                        &mut pairs,
                        &mut wire_pair,
                        &mut segments,
                    );
                    segments.push(Segment::Direct(k));
                }
            }
        }
        let all_wires: Vec<usize> = (0..circuit.n_qubits()).collect();
        close_touching(
            &all_wires,
            &mut pending,
            &mut pairs,
            &mut wire_pair,
            &mut segments,
        );
        Self {
            segments,
            n_ops: ops.len(),
        }
    }

    /// Number of kernel applications the fused program performs (≤ op count).
    pub fn fused_ops(&self) -> usize {
        self.segments.len()
    }

    /// The plan's segments, for the gate-major batch compiler.
    pub(crate) fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of gate applications fusion eliminated.
    pub fn collapsed_ops(&self) -> usize {
        self.n_ops - self.segments.len()
    }

    /// Runs `circuit` on `|0…0⟩` through this plan with the given bindings.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different circuit (op count
    /// mismatch), or under the same binding conditions as
    /// [`Circuit::run_unfused`].
    pub fn run(&self, circuit: &Circuit, inputs: &[f64], params: &[f64]) -> StateVector {
        assert_eq!(
            circuit.ops().len(),
            self.n_ops,
            "fuse plan built for a different circuit"
        );
        circuit.check_bindings(inputs, params);
        hqnn_telemetry::counter("qsim.circuit_runs", 1);
        hqnn_telemetry::counter("qsim.gate_applies", self.segments.len() as u64);
        hqnn_telemetry::counter("qsim.fuse_collapsed", self.collapsed_ops() as u64);
        hqnn_telemetry::gauge_max("qsim.statevector_len", (1u64 << circuit.n_qubits()) as f64);
        let mut state = StateVector::new(circuit.n_qubits());
        for segment in &self.segments {
            match segment {
                Segment::Run { wire, ops } => {
                    let mut m = resolved_matrix(&circuit.ops()[ops[0]], inputs, params);
                    for &k in &ops[1..] {
                        // ψ ← U_k (… U_1 ψ): later gates multiply from the left.
                        m = matmul2(&resolved_matrix(&circuit.ops()[k], inputs, params), &m);
                    }
                    state.apply_single(&m, *wire);
                }
                Segment::Pair { low, high, ops } => {
                    let m = pair_matrix(circuit, *low, *high, ops, inputs, params);
                    state.apply_two(&m, *low, *high);
                }
                Segment::Direct(k) => {
                    Circuit::apply_op(&circuit.ops()[*k], &mut state, inputs, params);
                }
            }
        }
        state
    }

    /// Audits this plan's legality for `circuit`: every op is covered by
    /// exactly one segment, every `Run` has ≥ 2 ops in strictly increasing
    /// program order, and all of a run's ops are single-qubit gates on the
    /// run's wire. Used by [`Circuit::verify`] to hold the fusion pass to
    /// the IR it was built from.
    pub fn audit(&self, circuit: &Circuit) -> Result<(), String> {
        if circuit.ops().len() != self.n_ops {
            return Err(format!(
                "plan covers {} ops but the circuit has {}",
                self.n_ops,
                circuit.ops().len()
            ));
        }
        let mut seen = vec![false; self.n_ops];
        let mark = |k: usize, seen: &mut Vec<bool>| -> Result<(), String> {
            if k >= seen.len() {
                return Err(format!("segment references op {k} beyond the op count"));
            }
            if seen[k] {
                return Err(format!("op {k} appears in more than one segment"));
            }
            seen[k] = true;
            Ok(())
        };
        for segment in &self.segments {
            match segment {
                Segment::Direct(k) => mark(*k, &mut seen)?,
                Segment::Pair { low, high, ops } => {
                    if low >= high {
                        return Err(format!(
                            "pair ({low},{high}) does not satisfy low < high"
                        ));
                    }
                    if ops.len() < 2 {
                        return Err(format!(
                            "pair ({low},{high}) has {} op(s); pairs must collapse ≥ 2",
                            ops.len()
                        ));
                    }
                    let mut prev = None;
                    let mut two_qubit = 0usize;
                    for &k in ops {
                        mark(k, &mut seen)?;
                        if prev.is_some_and(|p| k <= p) {
                            return Err(format!(
                                "pair ({low},{high}) is not in increasing program order at op {k}"
                            ));
                        }
                        prev = Some(k);
                        let op = &circuit.ops()[k];
                        match op.wires {
                            Wires::One(w) if w == *low || w == *high => {}
                            Wires::Two(a, b)
                                if (a.min(b), a.max(b)) == (*low, *high)
                                    && matches!(op.kind, GateKind::Cnot | GateKind::Cz) =>
                            {
                                two_qubit += 1;
                            }
                            ref other => {
                                return Err(format!(
                                    "op {k} ({:?} on {other:?}) is illegal inside pair ({low},{high}): pairs may only contain single-qubit ops on the pair wires and CNOT/CZ on the pair",
                                    op.kind
                                ));
                            }
                        }
                    }
                    if two_qubit == 0 {
                        return Err(format!(
                            "pair ({low},{high}) contains no CNOT/CZ; it should have been emitted as runs"
                        ));
                    }
                }
                Segment::Run { wire, ops } => {
                    if ops.len() < 2 {
                        return Err(format!(
                            "run on wire {wire} has {} op(s); runs must collapse ≥ 2",
                            ops.len()
                        ));
                    }
                    let mut prev = None;
                    for &k in ops {
                        mark(k, &mut seen)?;
                        if prev.is_some_and(|p| k <= p) {
                            return Err(format!(
                                "run on wire {wire} is not in increasing program order at op {k}"
                            ));
                        }
                        prev = Some(k);
                        match circuit.ops()[k].wires {
                            Wires::One(w) if w == *wire => {}
                            ref other => {
                                return Err(format!(
                                    "op {k} in a wire-{wire} run has wires {other:?}; runs may only contain single-qubit ops on the run wire"
                                ));
                            }
                        }
                    }
                }
            }
        }
        if let Some(k) = seen.iter().position(|&s| !s) {
            return Err(format!("op {k} is not covered by any segment"));
        }
        Ok(())
    }
}

/// Index of the first op in a pending run (`usize::MAX` when empty), the
/// deterministic ordering key for flushing runs on different wires.
fn run_start(pending: &[usize]) -> usize {
    pending.first().copied().unwrap_or(usize::MAX)
}

/// Emits a pending run as a segment: nothing when empty, a direct apply for
/// a singleton, a fused run for ≥ 2 ops.
fn flush_run(ops: Vec<usize>, wire: usize, segments: &mut Vec<Segment>) {
    match ops.len() {
        0 => {}
        1 => segments.push(Segment::Direct(ops[0])),
        _ => segments.push(Segment::Run { wire, ops }),
    }
}

/// Merges two sorted, disjoint index lists into one sorted list.
fn merge_sorted(a: Vec<usize>, b: Vec<usize>) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        if a[ia] < b[ib] {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

/// Emits a closed pair accumulator: as a [`Segment::Pair`] when the 4×4
/// apply is cheaper than the level-1 decomposition, otherwise re-emitted in
/// level-1 form (runs + direct applies) so level 2 never loses to level 1.
fn emit_pair(
    circuit: &Circuit,
    low: usize,
    high: usize,
    ops_idx: Vec<usize>,
    segments: &mut Vec<Segment>,
) {
    if pair_wins(circuit, high, &ops_idx) {
        segments.push(Segment::Pair {
            low,
            high,
            ops: ops_idx,
        });
        return;
    }
    // Level-1 decomposition local to the pair's two wires.
    let mut runs: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for &k in &ops_idx {
        match circuit.ops()[k].wires {
            Wires::One(w) => runs[usize::from(w == high)].push(k),
            Wires::Two(..) => {
                let (first, second) = if run_start(&runs[0]) <= run_start(&runs[1]) {
                    (0, 1)
                } else {
                    (1, 0)
                };
                for i in [first, second] {
                    let wire = if i == 0 { low } else { high };
                    flush_run(std::mem::take(&mut runs[i]), wire, segments);
                }
                segments.push(Segment::Direct(k));
            }
        }
    }
    let (first, second) = if run_start(&runs[0]) <= run_start(&runs[1]) {
        (0, 1)
    } else {
        (1, 0)
    };
    for i in [first, second] {
        let wire = if i == 0 { low } else { high };
        flush_run(std::mem::take(&mut runs[i]), wire, segments);
    }
}

/// Whether applying a pair accumulator as one 4×4 op beats its level-1
/// decomposition, by per-amplitude multiply count: a collapsed run (or
/// singleton single-qubit gate) costs 2, a direct controlled apply 1, and
/// the fused 4×4 apply 4. Strict inequality so ties keep the cheaper,
/// less-reassociated level-1 form.
fn pair_wins(circuit: &Circuit, high: usize, ops_idx: &[usize]) -> bool {
    let mut cost = 0usize;
    let mut open = [false, false];
    for &k in ops_idx {
        match circuit.ops()[k].wires {
            Wires::One(w) => open[usize::from(w == high)] = true,
            Wires::Two(..) => {
                for slot in &mut open {
                    if *slot {
                        cost += 2;
                        *slot = false;
                    }
                }
                cost += 1;
            }
        }
    }
    for slot in open {
        if slot {
            cost += 2;
        }
    }
    cost > 4
}

/// The op's 2×2 matrix with its angle resolved from the bindings.
pub(crate) fn resolved_matrix(op: &Op, inputs: &[f64], params: &[f64]) -> Matrix2 {
    let theta = if op.kind.is_parametrized() {
        op.param.resolve(inputs, params)
    } else {
        0.0
    };
    op.kind.matrix(theta)
}

/// The op's 4×4 matrix in the `(low, high)` pair basis with its angle
/// resolved from the bindings: single-qubit ops embed on their bit,
/// CNOT/CZ embed as controlled matrices with the right orientation.
pub(crate) fn op_matrix4(
    op: &Op,
    low: usize,
    high: usize,
    inputs: &[f64],
    params: &[f64],
) -> Matrix4 {
    debug_assert!(low < high, "pair basis requires low < high");
    let bit = |w: usize| usize::from(w == high);
    let m = resolved_matrix(op, inputs, params);
    match op.wires {
        Wires::One(w) => embed_single(&m, bit(w)),
        Wires::Two(c, t) => embed_controlled(&m, bit(c), bit(t)),
    }
}

/// The product matrix of a pair segment's ops in application order (later
/// ops multiply from the left) — the 4×4 analogue of a run's matrix chain,
/// shared by [`FusePlan::run`] and the gate-major batch compiler so both
/// produce bitwise-identical matrices.
pub(crate) fn pair_matrix(
    circuit: &Circuit,
    low: usize,
    high: usize,
    ops_idx: &[usize],
    inputs: &[f64],
    params: &[f64],
) -> Matrix4 {
    let ops = circuit.ops();
    let mut m = op_matrix4(&ops[ops_idx[0]], low, high, inputs, params);
    for &k in &ops_idx[1..] {
        m = matmul4(&op_matrix4(&ops[k], low, high, inputs, params), &m);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{EntanglerKind, QnnTemplate};
    use crate::circuit::ParamSource;
    use crate::observable::Observable;

    #[test]
    fn fusion_flag_resolution_order() {
        // Default off (HQNN_FUSE unset in the test environment) unless the
        // env enables it; the scoped override always wins either way.
        let ambient = fusion_enabled();
        assert!(with_fusion(true, fusion_enabled));
        assert!(!with_fusion(false, fusion_enabled));
        let nested = with_fusion(true, || with_fusion(false, fusion_enabled));
        assert!(!nested);
        assert_eq!(fusion_enabled(), ambient);
    }

    #[test]
    fn with_fusion_restores_on_panic() {
        let ambient = fusion_enabled();
        let result = std::panic::catch_unwind(|| with_fusion(!ambient, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(fusion_enabled(), ambient);
    }

    #[test]
    fn rot_run_collapses_to_one_apply() {
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Fixed(0.4));
        c.rot(
            0,
            ParamSource::Fixed(0.1),
            ParamSource::Fixed(0.2),
            ParamSource::Fixed(0.3),
        );
        let plan = FusePlan::new(&c);
        assert_eq!(plan.fused_ops(), 1);
        assert_eq!(plan.collapsed_ops(), 3);
        let fused = plan.run(&c, &[], &[]);
        assert!(fused.approx_eq(&c.run_unfused(&[], &[]), 1e-12));
    }

    #[test]
    fn two_qubit_ops_break_runs_only_on_their_wires() {
        let mut c = Circuit::new(3);
        c.ry(0, ParamSource::Fixed(0.3));
        c.ry(2, ParamSource::Fixed(0.5));
        c.cnot(0, 1); // breaks wire 0 (singleton) but not wire 2
        c.ry(2, ParamSource::Fixed(-0.2));
        let plan = FusePlan::new(&c);
        // Direct(ry0), Direct(cnot), Run{wire 2: both ry2} → 3 segments.
        assert_eq!(plan.fused_ops(), 3);
        assert_eq!(plan.collapsed_ops(), 1);
        let fused = plan.run(&c, &[], &[]);
        assert!(fused.approx_eq(&c.run_unfused(&[], &[]), 1e-12));
    }

    #[test]
    fn sel_template_fuses_encoding_into_first_rot() {
        let t = QnnTemplate::new(3, 2, EntanglerKind::Strong);
        let c = t.build();
        let plan = FusePlan::new(&c);
        // Per wire and layer: encoding RX + RZ·RY·RZ fuse (first layer run
        // of 4; later layers runs of 3), CNOT rings pass through.
        assert!(plan.collapsed_ops() > 0, "SEL must fuse");
        let inputs = [0.2, -0.4, 0.9];
        let params: Vec<f64> = (0..c.trainable_count()).map(|i| 0.1 * i as f64).collect();
        let fused = plan.run(&c, &inputs, &params);
        assert!(fused.approx_eq(&c.run_unfused(&inputs, &params), 1e-12));
    }

    #[test]
    fn fused_expectations_match_scalar_within_tolerance() {
        for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
            let c = QnnTemplate::new(4, 3, kind).build();
            let inputs: Vec<f64> = (0..4).map(|i| 0.3 * i as f64 - 0.5).collect();
            let params: Vec<f64> = (0..c.trainable_count())
                .map(|i| (i as f64 * 0.7).sin())
                .collect();
            let obs: Vec<Observable> = (0..4).map(Observable::z).collect();
            let scalar = with_fusion(false, || c.expectations(&inputs, &params, &obs));
            let fused = with_fusion(true, || c.expectations(&inputs, &params, &obs));
            for (a, b) in scalar.iter().zip(&fused) {
                assert!((a - b).abs() < 1e-12, "{kind:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn plan_rejects_mismatched_circuit() {
        let mut a = Circuit::new(1);
        a.h(0);
        let plan = FusePlan::new(&a);
        let mut b = Circuit::new(1);
        b.h(0);
        b.x(0);
        let result = std::panic::catch_unwind(|| plan.run(&b, &[], &[]));
        assert!(result.is_err());
    }

    #[test]
    fn empty_circuit_plan_is_empty() {
        let c = Circuit::new(2);
        let plan = FusePlan::new(&c);
        assert_eq!(plan.fused_ops(), 0);
        assert_eq!(plan.collapsed_ops(), 0);
        let s = plan.run(&c, &[], &[]);
        assert_eq!(s.probability(0), 1.0);
    }

    #[test]
    fn fusion_level_override_nests_and_restores() {
        let ambient = fusion_level();
        let inner = with_fusion_level(2, || {
            assert_eq!(fusion_level(), 2);
            with_fusion_level(0, fusion_level)
        });
        assert_eq!(inner, 0);
        assert_eq!(fusion_level(), ambient);
        // The boolean spelling maps onto levels 0/1.
        assert_eq!(with_fusion(true, fusion_level), 1);
        assert_eq!(with_fusion(false, fusion_level), 0);
    }

    #[test]
    fn cnot_sandwich_collapses_into_one_pair() {
        // rx0, ry1, CNOT, rz0, ry1 — five ops, one 4×4 apply.
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Fixed(0.4));
        c.ry(1, ParamSource::Fixed(-0.2));
        c.cnot(0, 1);
        c.rz(0, ParamSource::Fixed(0.9));
        c.ry(1, ParamSource::Fixed(1.1));
        let plan = FusePlan::with_level(&c, 2);
        assert_eq!(plan.fused_ops(), 1);
        assert_eq!(plan.collapsed_ops(), 4);
        assert!(matches!(plan.segments()[0], Segment::Pair { low: 0, high: 1, .. }));
        assert_eq!(plan.audit(&c), Ok(()));
        let fused = plan.run(&c, &[], &[]);
        assert!(fused.approx_eq(&c.run_unfused(&[], &[]), 1e-12));
    }

    #[test]
    fn lone_cnot_is_not_worth_a_pair() {
        // cost 1 (direct controlled apply) < 4 (pair apply) → level-1 form.
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let plan = FusePlan::with_level(&c, 2);
        assert_eq!(plan.segments(), &[Segment::Direct(0)]);
    }

    #[test]
    fn pair_fusion_matches_scalar_on_templates() {
        for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
            let c = QnnTemplate::new(4, 3, kind).build();
            let inputs: Vec<f64> = (0..4).map(|i| 0.3 * i as f64 - 0.5).collect();
            let params: Vec<f64> = (0..c.trainable_count())
                .map(|i| (i as f64 * 0.7).sin())
                .collect();
            let plan = FusePlan::with_level(&c, 2);
            assert_eq!(plan.audit(&c), Ok(()), "{kind:?}");
            let fused = plan.run(&c, &inputs, &params);
            assert!(
                fused.approx_eq(&c.run_unfused(&inputs, &params), 1e-12),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn pair_closes_when_a_third_wire_intervenes() {
        // CNOT(0,1) opens a pair; CNOT(1,2) touches wire 1 → the first pair
        // must close before the second opens. Audit validates the split.
        let mut c = Circuit::new(3);
        c.rx(0, ParamSource::Fixed(0.1));
        c.ry(1, ParamSource::Fixed(0.2));
        c.cnot(0, 1);
        c.rz(1, ParamSource::Fixed(0.3));
        c.cnot(1, 2);
        c.ry(2, ParamSource::Fixed(0.4));
        let plan = FusePlan::with_level(&c, 2);
        assert_eq!(plan.audit(&c), Ok(()));
        let fused = plan.run(&c, &[], &[]);
        assert!(fused.approx_eq(&c.run_unfused(&[], &[]), 1e-12));
    }

    #[test]
    fn swap_breaks_pairs_and_stays_direct() {
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Fixed(0.1));
        c.ry(1, ParamSource::Fixed(0.2));
        c.cnot(0, 1);
        c.swap(0, 1); // not CNOT/CZ → closes the pair, applied directly
        c.rz(0, ParamSource::Fixed(0.3));
        let plan = FusePlan::with_level(&c, 2);
        assert_eq!(plan.audit(&c), Ok(()));
        assert!(plan
            .segments()
            .iter()
            .any(|s| matches!(s, Segment::Direct(3))));
        let fused = plan.run(&c, &[], &[]);
        assert!(fused.approx_eq(&c.run_unfused(&[], &[]), 1e-12));
    }

    #[test]
    fn audit_rejects_pair_without_two_qubit_op() {
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Fixed(0.1));
        c.rx(1, ParamSource::Fixed(0.2));
        let plan = FusePlan {
            segments: vec![Segment::Pair {
                low: 0,
                high: 1,
                ops: vec![0, 1],
            }],
            n_ops: 2,
        };
        let err = plan.audit(&c).expect_err("no CNOT/CZ in the pair");
        assert!(err.contains("no CNOT/CZ"), "{err}");
    }

    #[test]
    fn audit_rejects_pair_with_foreign_wire() {
        let mut c = Circuit::new(3);
        c.rx(2, ParamSource::Fixed(0.1)); // wire 2 is outside pair (0,1)
        c.cnot(0, 1);
        let plan = FusePlan {
            segments: vec![Segment::Pair {
                low: 0,
                high: 1,
                ops: vec![0, 1],
            }],
            n_ops: 2,
        };
        let err = plan.audit(&c).expect_err("foreign wire inside a pair");
        assert!(err.contains("illegal inside pair"), "{err}");
    }

    #[test]
    fn audit_rejects_unsorted_pair_wires() {
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Fixed(0.1));
        c.cnot(0, 1);
        let plan = FusePlan {
            segments: vec![Segment::Pair {
                low: 1,
                high: 0,
                ops: vec![0, 1],
            }],
            n_ops: 2,
        };
        let err = plan.audit(&c).expect_err("low >= high");
        assert!(err.contains("low < high"), "{err}");
    }
}
