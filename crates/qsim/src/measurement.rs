//! Shot-based measurement: sampling bitstrings and estimating expectations
//! with finite statistics.
//!
//! The paper's pipeline (like PennyLane's default) evaluates expectation
//! values *analytically*; real NISQ hardware estimates them from a finite
//! number of measurement **shots**, adding `O(1/√shots)` statistical noise
//! on top of any gate noise. This module provides the sampling machinery so
//! that idealisation, too, can be dropped: sample computational-basis
//! outcomes from a [`StateVector`] or [`DensityMatrix`], and estimate `⟨Z⟩`
//! from the samples.

use hqnn_tensor::SeededRng;

use crate::density::DensityMatrix;
use crate::state::StateVector;

/// A finite sample of computational-basis measurement outcomes.
///
/// # Example
///
/// ```
/// use hqnn_qsim::measurement::sample_state;
/// use hqnn_qsim::{Circuit, StateVector};
/// use hqnn_tensor::SeededRng;
///
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cnot(0, 1);
/// let shots = sample_state(&c.run(&[], &[]), 1000, &mut SeededRng::new(1));
/// // A Bell state only ever yields |00⟩ or |11⟩.
/// assert_eq!(shots.count(1) + shots.count(2), 0);
/// assert_eq!(shots.shots(), 1000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shots {
    n_qubits: usize,
    counts: Vec<u64>,
    total: u64,
}

impl Shots {
    /// Number of qubits per outcome.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Total number of shots taken.
    pub fn shots(&self) -> u64 {
        self.total
    }

    /// How many shots landed on basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n_qubits`.
    pub fn count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Empirical probability of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n_qubits`.
    pub fn frequency(&self, index: usize) -> f64 {
        self.counts[index] as f64 / self.total as f64
    }

    /// Empirical `⟨Z_wire⟩`: the signed fraction of shots with that bit 0
    /// vs 1. Converges to the analytic expectation as `O(1/√shots)`.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= n_qubits`.
    pub fn expectation_z(&self, wire: usize) -> f64 {
        assert!(wire < self.n_qubits, "wire {wire} out of range");
        let mask = 1usize << wire;
        let mut signed = 0i64;
        for (index, &count) in self.counts.iter().enumerate() {
            if index & mask == 0 {
                signed += count as i64;
            } else {
                signed -= count as i64;
            }
        }
        signed as f64 / self.total as f64
    }

    /// The standard error of [`Shots::expectation_z`]:
    /// `√((1 − ⟨Z⟩²) / shots)`.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= n_qubits`.
    pub fn standard_error_z(&self, wire: usize) -> f64 {
        let e = self.expectation_z(wire);
        ((1.0 - e * e).max(0.0) / self.total as f64).sqrt()
    }

    fn from_distribution(
        probabilities: &[f64],
        n_qubits: usize,
        shots: u64,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(shots > 0, "need at least one shot");
        // Cumulative distribution + inverse-CDF sampling.
        let mut cdf = Vec::with_capacity(probabilities.len());
        let mut acc = 0.0;
        for &p in probabilities {
            acc += p.max(0.0);
            cdf.push(acc);
        }
        let norm = acc;
        let mut counts = vec![0u64; probabilities.len()];
        for _ in 0..shots {
            let u = rng.unit() * norm;
            let idx = cdf.partition_point(|&c| c < u).min(probabilities.len() - 1);
            counts[idx] += 1;
        }
        Self {
            n_qubits,
            counts,
            total: shots,
        }
    }
}

/// Samples `shots` computational-basis outcomes from a pure state.
///
/// # Panics
///
/// Panics if `shots == 0`.
pub fn sample_state(state: &StateVector, shots: u64, rng: &mut SeededRng) -> Shots {
    Shots::from_distribution(&state.probabilities(), state.n_qubits(), shots, rng)
}

/// Samples `shots` computational-basis outcomes from a density matrix
/// (its diagonal is the outcome distribution).
///
/// # Panics
///
/// Panics if `shots == 0`.
pub fn sample_density(rho: &DensityMatrix, shots: u64, rng: &mut SeededRng) -> Shots {
    let probs: Vec<f64> = (0..rho.dim()).map(|i| rho.probability(i)).collect();
    Shots::from_distribution(&probs, rho.n_qubits(), shots, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, ParamSource};
    use crate::noise::NoiseModel;

    #[test]
    fn deterministic_state_always_yields_same_outcome() {
        let mut c = Circuit::new(2);
        c.x(1);
        let shots = sample_state(&c.run(&[], &[]), 500, &mut SeededRng::new(0));
        assert_eq!(shots.count(2), 500);
        assert_eq!(shots.frequency(2), 1.0);
        assert_eq!(shots.expectation_z(1), -1.0);
        assert_eq!(shots.expectation_z(0), 1.0);
        assert_eq!(shots.standard_error_z(1), 0.0);
    }

    #[test]
    fn frequencies_converge_to_probabilities() {
        let mut c = Circuit::new(1);
        c.ry(0, ParamSource::Fixed(1.1));
        let state = c.run(&[], &[]);
        let shots = sample_state(&state, 200_000, &mut SeededRng::new(3));
        for i in 0..2 {
            assert!(
                (shots.frequency(i) - state.probability(i)).abs() < 0.01,
                "outcome {i}"
            );
        }
    }

    #[test]
    fn empirical_expectation_tracks_analytic_within_error() {
        let theta = 0.8;
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Fixed(theta));
        let state = c.run(&[], &[]);
        let shots = sample_state(&state, 50_000, &mut SeededRng::new(7));
        let err = shots.standard_error_z(0);
        assert!(
            (shots.expectation_z(0) - theta.cos()).abs() < 5.0 * err,
            "{} vs {} (σ = {err})",
            shots.expectation_z(0),
            theta.cos()
        );
        assert!(err > 0.0 && err < 0.01);
    }

    #[test]
    fn error_shrinks_with_shot_count() {
        let mut c = Circuit::new(1);
        c.h(0);
        let state = c.run(&[], &[]);
        let few = sample_state(&state, 100, &mut SeededRng::new(1));
        let many = sample_state(&state, 100_000, &mut SeededRng::new(1));
        assert!(many.standard_error_z(0) < few.standard_error_z(0) / 10.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        let state = c.run(&[], &[]);
        let a = sample_state(&state, 1000, &mut SeededRng::new(9));
        let b = sample_state(&state, 1000, &mut SeededRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn density_sampling_matches_diagonal() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cnot(0, 1);
        let rho = DensityMatrix::run_noisy(&c, &[], &[], &NoiseModel::depolarizing(0.1));
        let shots = sample_density(&rho, 100_000, &mut SeededRng::new(4));
        for i in 0..4 {
            assert!(
                (shots.frequency(i) - rho.probability(i)).abs() < 0.01,
                "outcome {i}: {} vs {}",
                shots.frequency(i),
                rho.probability(i)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shots_rejected() {
        let state = StateVector::new(1);
        let _ = sample_state(&state, 0, &mut SeededRng::new(0));
    }
}
