//! Differentiation engines for variational circuits.
//!
//! Three independent ways to compute `d⟨O⟩/dθ` for every trainable parameter
//! **and** every encoded input of a [`Circuit`]:
//!
//! * [`adjoint`] — reverse-pass differentiation in O(gates · 2ⁿ) with three
//!   statevectors of working memory. Exact (no shots, no truncation). This is
//!   what hybrid training uses.
//! * [`parameter_shift`] — the hardware-compatible two-term shift rule,
//!   `dE/dθ = (E(θ+π/2) − E(θ−π/2))/2`, costing two circuit executions per
//!   parametrized gate. Used to cross-check `adjoint` and for the
//!   gradient-cost ablation.
//! * [`finite_diff`] — central differences; a test oracle only.
//!
//! All three agree to numerical precision on every supported circuit, which
//! the test-suite and the workspace's property tests enforce.

use hqnn_tensor::Matrix;

use crate::circuit::{Circuit, ParamSource, Wires};
use crate::observable::Observable;
use crate::state::StateVector;

/// Expectation values and their derivatives for one circuit evaluation.
///
/// Row `o` of each matrix corresponds to `observables[o]`; columns index the
/// trainable-parameter / input slots.
#[derive(Clone, Debug, PartialEq)]
pub struct Gradients {
    /// `⟨O_o⟩` for each observable.
    pub expectations: Vec<f64>,
    /// `d⟨O_o⟩ / dθ_t` — shape `(n_observables, trainable_count)`.
    pub d_params: Matrix,
    /// `d⟨O_o⟩ / dx_i` — shape `(n_observables, input_count)`.
    pub d_inputs: Matrix,
}

/// Computes expectations and gradients with the adjoint method.
///
/// One forward pass builds the final state; then, per observable, a single
/// reverse sweep walks the circuit backwards, un-applying each gate and
/// accumulating `2·Re⟨λ|dU|ψ⟩` for every differentiable gate. Gradients are
/// produced for both [`ParamSource::Trainable`] and [`ParamSource::Input`]
/// slots, so a classical layer feeding the encoding can be backpropagated
/// into.
///
/// # Panics
///
/// Panics if `inputs`/`params` are shorter than the circuit requires, or an
/// observable touches a wire outside the circuit.
pub fn adjoint(
    circuit: &Circuit,
    inputs: &[f64],
    params: &[f64],
    observables: &[Observable],
) -> Gradients {
    let _span = hqnn_telemetry::span("qsim.adjoint");
    hqnn_telemetry::counter("qsim.adjoint_passes", 1);
    let n_obs = observables.len();
    let mut grads = Gradients {
        expectations: Vec::with_capacity(n_obs),
        d_params: Matrix::zeros(n_obs, circuit.trainable_count()),
        d_inputs: Matrix::zeros(n_obs, circuit.input_count()),
    };
    // The reverse sweep below un-applies the circuit op by op, so the
    // forward state must come from the same per-op stream: gradients are
    // bitwise identical whether or not gate fusion is enabled.
    let final_state = circuit.run_unfused(inputs, params);

    for (o, obs) in observables.iter().enumerate() {
        grads.expectations.push(obs.expectation(&final_state));

        let mut psi = final_state.clone();
        let mut lambda = final_state.clone();
        obs.apply_to(&mut lambda);
        // One scratch state reused across the reverse sweep: refilling it
        // copies the same bits `psi.clone()` would, without reallocating
        // 2^n amplitudes per differentiable gate.
        let mut mu = final_state.clone();

        for op in circuit.ops().iter().rev() {
            // ψ ← U† ψ : recover the pre-gate state.
            Circuit::apply_op_inverse(op, &mut psi, inputs, params);

            if op.param.is_differentiable() {
                let theta = op.param.resolve(inputs, params);
                let dm = op
                    .kind
                    .dmatrix(theta)
                    // lint:allow(panic): grad loop only visits parametrized ops
                    .expect("differentiable op must be parametrized");
                mu.copy_amps_from(&psi);
                match op.wires {
                    Wires::One(w) => mu.apply_single(&dm, w),
                    Wires::Two(c, t) => {
                        // d(controlled-U)/dθ acts as |1⟩⟨1| ⊗ dU.
                        mu.apply_controlled_projected(&dm, c, t);
                    }
                }
                let g = 2.0 * lambda.inner(&mu).re;
                match op.param {
                    ParamSource::Trainable(i) => grads.d_params[(o, i)] += g,
                    ParamSource::Input(i) => grads.d_inputs[(o, i)] += g,
                    _ => unreachable!("is_differentiable filtered the rest"),
                }
            }

            // λ ← U† λ.
            Circuit::apply_op_inverse(op, &mut lambda, inputs, params);
        }
    }
    grads
}

/// Computes expectations and gradients with the two-term parameter-shift rule.
///
/// Each differentiable gate contributes
/// `(E(θ_g + π/2) − E(θ_g − π/2)) / 2` to the gradient of its parameter slot
/// (slots feeding several gates sum their per-gate contributions, as the
/// product rule requires).
///
/// # Panics
///
/// Panics under the same conditions as [`adjoint`], and additionally when a
/// differentiable gate does not admit the two-term rule (e.g. controlled
/// rotations, which need the four-term rule — use [`adjoint`] for those).
pub fn parameter_shift(
    circuit: &Circuit,
    inputs: &[f64],
    params: &[f64],
    observables: &[Observable],
) -> Gradients {
    let _span = hqnn_telemetry::span("qsim.parameter_shift");
    hqnn_telemetry::counter("qsim.parameter_shift_passes", 1);
    let n_obs = observables.len();
    // Unshifted expectations go through the unfused stream, like the shifted
    // evaluations below — the whole engine ignores the fusion flag.
    let base_state = circuit.run_unfused(inputs, params);
    let mut grads = Gradients {
        expectations: observables
            .iter()
            .map(|o| o.expectation(&base_state))
            .collect(),
        d_params: Matrix::zeros(n_obs, circuit.trainable_count()),
        d_inputs: Matrix::zeros(n_obs, circuit.input_count()),
    };
    const SHIFT: f64 = std::f64::consts::FRAC_PI_2;

    for (k, op) in circuit.ops().iter().enumerate() {
        if !op.param.is_differentiable() {
            continue;
        }
        assert!(
            op.kind.supports_two_term_shift(),
            "{:?} does not admit the two-term shift rule; use adjoint()",
            op.kind
        );
        let plus = expectations_with_shift(circuit, inputs, params, observables, k, SHIFT);
        let minus = expectations_with_shift(circuit, inputs, params, observables, k, -SHIFT);
        for o in 0..n_obs {
            let g = (plus[o] - minus[o]) / 2.0;
            match op.param {
                ParamSource::Trainable(i) => grads.d_params[(o, i)] += g,
                ParamSource::Input(i) => grads.d_inputs[(o, i)] += g,
                _ => unreachable!(),
            }
        }
    }
    grads
}

/// Runs the circuit with gate `shifted_op`'s angle offset by `delta` and
/// returns the observable expectations.
fn expectations_with_shift(
    circuit: &Circuit,
    inputs: &[f64],
    params: &[f64],
    observables: &[Observable],
    shifted_op: usize,
    delta: f64,
) -> Vec<f64> {
    let mut state = StateVector::new(circuit.n_qubits());
    for (k, op) in circuit.ops().iter().enumerate() {
        if k == shifted_op {
            let theta = op.param.resolve(inputs, params) + delta;
            Circuit::apply_op_resolved(op, &mut state, theta);
        } else {
            Circuit::apply_op(op, &mut state, inputs, params);
        }
    }
    observables.iter().map(|o| o.expectation(&state)).collect()
}

/// Parameter-shift gradients of a **noisy** circuit's expectations.
///
/// The two-term shift rule holds for expectation values of channels applied
/// around shift-compatible gates (channels are linear in ρ), so the same
/// rule that differentiates pure circuits differentiates noisy ones —
/// this is what lets [`hqnn_core`'s noisy quantum layer] train under a
/// NISQ-style noise model. Costs two density-matrix simulations per
/// differentiated gate.
///
/// With a noiseless model this agrees with [`parameter_shift`] exactly
/// (tested).
///
/// # Panics
///
/// As for [`parameter_shift`]; additionally if the circuit is wider than
/// [`crate::density::MAX_DENSITY_QUBITS`].
///
/// [`hqnn_core`'s noisy quantum layer]: https://docs.rs/hqnn-core
pub fn parameter_shift_noisy(
    circuit: &Circuit,
    inputs: &[f64],
    params: &[f64],
    observables: &[Observable],
    noise: &crate::noise::NoiseModel,
) -> Gradients {
    let n_obs = observables.len();
    let expectations_of = |shifted_op: Option<(usize, f64)>| -> Vec<f64> {
        // Re-resolve parameters with one op's angle shifted, then simulate
        // the whole circuit as a density matrix under the noise model.
        let mut shifted_params = params.to_vec();
        let mut shifted_inputs = inputs.to_vec();
        if let Some((k, delta)) = shifted_op {
            match circuit.ops()[k].param {
                ParamSource::Trainable(i) => shifted_params[i] += delta,
                ParamSource::Input(i) => shifted_inputs[i] += delta,
                _ => {}
            }
        }
        let rho = crate::density::DensityMatrix::run_noisy(
            circuit,
            &shifted_inputs,
            &shifted_params,
            noise,
        );
        observables.iter().map(|o| rho.expectation(o)).collect()
    };

    let mut grads = Gradients {
        expectations: expectations_of(None),
        d_params: Matrix::zeros(n_obs, circuit.trainable_count()),
        d_inputs: Matrix::zeros(n_obs, circuit.input_count()),
    };
    const SHIFT: f64 = std::f64::consts::FRAC_PI_2;

    // NOTE: shifting via the parameter *slot* (not the individual gate) is
    // only exact when each differentiable slot feeds a single gate — true
    // for every template in this workspace; the assertion enforces it.
    let mut seen_slots: Vec<ParamSource> = Vec::new();
    for op in circuit.ops() {
        if !op.param.is_differentiable() {
            continue;
        }
        assert!(
            !seen_slots.contains(&op.param),
            "parameter_shift_noisy requires each differentiable slot to feed one gate"
        );
        seen_slots.push(op.param);
        assert!(
            op.kind.supports_two_term_shift(),
            "{:?} does not admit the two-term shift rule",
            op.kind
        );
    }

    for (k, op) in circuit.ops().iter().enumerate() {
        if !op.param.is_differentiable() {
            continue;
        }
        let plus = expectations_of(Some((k, SHIFT)));
        let minus = expectations_of(Some((k, -SHIFT)));
        for o in 0..n_obs {
            let g = (plus[o] - minus[o]) / 2.0;
            match op.param {
                ParamSource::Trainable(i) => grads.d_params[(o, i)] += g,
                ParamSource::Input(i) => grads.d_inputs[(o, i)] += g,
                _ => unreachable!(),
            }
        }
    }
    grads
}

/// Central-difference gradients with step `eps` — a slow, approximate oracle
/// used to validate the exact engines in tests.
///
/// # Panics
///
/// As for [`adjoint`]. Also panics if `eps <= 0`.
pub fn finite_diff(
    circuit: &Circuit,
    inputs: &[f64],
    params: &[f64],
    observables: &[Observable],
    eps: f64,
) -> Gradients {
    assert!(eps > 0.0, "finite-difference step must be positive");
    let n_obs = observables.len();
    let mut grads = Gradients {
        expectations: circuit.expectations(inputs, params, observables),
        d_params: Matrix::zeros(n_obs, circuit.trainable_count()),
        d_inputs: Matrix::zeros(n_obs, circuit.input_count()),
    };
    let mut p = params.to_vec();
    for t in 0..circuit.trainable_count() {
        p[t] += eps;
        let up = circuit.expectations(inputs, &p, observables);
        p[t] -= 2.0 * eps;
        let down = circuit.expectations(inputs, &p, observables);
        p[t] += eps;
        for o in 0..n_obs {
            grads.d_params[(o, t)] = (up[o] - down[o]) / (2.0 * eps);
        }
    }
    let mut x = inputs.to_vec();
    for i in 0..circuit.input_count() {
        x[i] += eps;
        let up = circuit.expectations(&x, params, observables);
        x[i] -= 2.0 * eps;
        let down = circuit.expectations(&x, params, observables);
        x[i] += eps;
        for o in 0..n_obs {
            grads.d_inputs[(o, i)] = (up[o] - down[o]) / (2.0 * eps);
        }
    }
    grads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateKind;

    fn z_all(n: usize) -> Vec<Observable> {
        (0..n).map(Observable::z).collect()
    }

    #[test]
    fn adjoint_single_rx_gradient_is_minus_sine() {
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Trainable(0));
        for k in 0..8 {
            let theta = k as f64 * 0.4 - 1.5;
            let g = adjoint(&c, &[], &[theta], &z_all(1));
            assert!((g.expectations[0] - theta.cos()).abs() < 1e-12);
            assert!(
                (g.d_params[(0, 0)] + theta.sin()).abs() < 1e-12,
                "θ={theta}"
            );
        }
    }

    #[test]
    fn parameter_shift_single_rx_gradient_is_minus_sine() {
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Trainable(0));
        let theta = 0.9;
        let g = parameter_shift(&c, &[], &[theta], &z_all(1));
        assert!((g.d_params[(0, 0)] + theta.sin()).abs() < 1e-12);
    }

    #[test]
    fn input_gradients_flow() {
        let mut c = Circuit::new(1);
        c.ry(0, ParamSource::Input(0));
        let x = 0.6;
        let g = adjoint(&c, &[x], &[], &z_all(1));
        assert!((g.d_inputs[(0, 0)] + x.sin()).abs() < 1e-12);
        let ps = parameter_shift(&c, &[x], &[], &z_all(1));
        assert!((ps.d_inputs[(0, 0)] + x.sin()).abs() < 1e-12);
    }

    fn entangled_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.rx(0, ParamSource::Input(0));
        c.ry(1, ParamSource::Input(1));
        c.rz(2, ParamSource::Input(2));
        c.cnot(0, 1);
        c.rx(0, ParamSource::Trainable(0));
        c.ry(1, ParamSource::Trainable(1));
        c.rz(2, ParamSource::Trainable(2));
        c.cnot(1, 2);
        c.cnot(2, 0);
        c.ry(0, ParamSource::Trainable(3));
        c.h(1);
        c.phase_shift(2, ParamSource::Trainable(4));
        c
    }

    #[test]
    fn adjoint_matches_parameter_shift_on_entangled_circuit() {
        let c = entangled_circuit();
        let inputs = [0.3, -0.7, 1.1];
        let params = [0.5, -0.2, 0.9, 1.4, -0.8];
        let obs = z_all(3);
        let a = adjoint(&c, &inputs, &params, &obs);
        let p = parameter_shift(&c, &inputs, &params, &obs);
        assert!(a.d_params.approx_eq(&p.d_params, 1e-10));
        assert!(a.d_inputs.approx_eq(&p.d_inputs, 1e-10));
        for (ea, ep) in a.expectations.iter().zip(&p.expectations) {
            assert!((ea - ep).abs() < 1e-12);
        }
    }

    #[test]
    fn adjoint_matches_finite_diff_on_entangled_circuit() {
        let c = entangled_circuit();
        let inputs = [0.3, -0.7, 1.1];
        let params = [0.5, -0.2, 0.9, 1.4, -0.8];
        let obs = z_all(3);
        let a = adjoint(&c, &inputs, &params, &obs);
        let f = finite_diff(&c, &inputs, &params, &obs, 1e-6);
        assert!(a.d_params.approx_eq(&f.d_params, 1e-6));
        assert!(a.d_inputs.approx_eq(&f.d_inputs, 1e-6));
    }

    #[test]
    fn adjoint_differentiates_controlled_rotations() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.controlled_rotation(GateKind::Crx, 0, 1, ParamSource::Trainable(0));
        let obs = z_all(2);
        let a = adjoint(&c, &[], &[0.7], &obs);
        let f = finite_diff(&c, &[], &[0.7], &obs, 1e-6);
        assert!(a.d_params.approx_eq(&f.d_params, 1e-6));
    }

    #[test]
    #[should_panic(expected = "two-term shift rule")]
    fn parameter_shift_rejects_controlled_rotations() {
        let mut c = Circuit::new(2);
        c.controlled_rotation(GateKind::Crz, 0, 1, ParamSource::Trainable(0));
        let _ = parameter_shift(&c, &[], &[0.4], &z_all(2));
    }

    #[test]
    fn shared_parameter_slot_sums_contributions() {
        // Same trainable slot feeds two RX gates on different wires.
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Trainable(0));
        c.rx(1, ParamSource::Trainable(0));
        let theta = 0.4;
        let obs = z_all(2);
        let a = adjoint(&c, &[], &[theta], &obs);
        let p = parameter_shift(&c, &[], &[theta], &obs);
        let f = finite_diff(&c, &[], &[theta], &obs, 1e-6);
        assert!(a.d_params.approx_eq(&p.d_params, 1e-10));
        assert!(a.d_params.approx_eq(&f.d_params, 1e-6));
        // Each wire's ⟨Z⟩ = cos θ so each row gradient is -sin θ.
        assert!((a.d_params[(0, 0)] + theta.sin()).abs() < 1e-12);
    }

    #[test]
    fn gradient_of_fixed_circuit_is_empty() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cnot(0, 1);
        let g = adjoint(&c, &[], &[], &z_all(2));
        assert_eq!(g.d_params.shape(), (2, 0));
        assert_eq!(g.d_inputs.shape(), (2, 0));
        assert_eq!(g.expectations.len(), 2);
    }

    #[test]
    fn noisy_shift_matches_pure_shift_without_noise() {
        let c = entangled_circuit();
        let inputs = [0.3, -0.7, 1.1];
        let params = [0.5, -0.2, 0.9, 1.4, -0.8];
        let obs = z_all(3);
        let pure = parameter_shift(&c, &inputs, &params, &obs);
        let noisy = parameter_shift_noisy(
            &c,
            &inputs,
            &params,
            &obs,
            &crate::noise::NoiseModel::noiseless(),
        );
        assert!(pure.d_params.approx_eq(&noisy.d_params, 1e-9));
        assert!(pure.d_inputs.approx_eq(&noisy.d_inputs, 1e-9));
        for (a, b) in pure.expectations.iter().zip(&noisy.expectations) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn noisy_shift_matches_noisy_finite_differences() {
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Input(0));
        c.ry(1, ParamSource::Trainable(0));
        c.cnot(0, 1);
        c.rz(0, ParamSource::Trainable(1));
        let noise = crate::noise::NoiseModel::depolarizing(0.08);
        let inputs = [0.4];
        let params = [0.7, -0.3];
        let obs = z_all(2);
        let analytic = parameter_shift_noisy(&c, &inputs, &params, &obs, &noise);

        let eval = |inputs: &[f64], params: &[f64]| -> Vec<f64> {
            let rho = crate::density::DensityMatrix::run_noisy(&c, inputs, params, &noise);
            obs.iter().map(|o| rho.expectation(o)).collect()
        };
        let eps = 1e-6;
        for t in 0..2 {
            let mut up = params.to_vec();
            up[t] += eps;
            let mut dn = params.to_vec();
            dn[t] -= eps;
            let e_up = eval(&inputs, &up);
            let e_dn = eval(&inputs, &dn);
            for o in 0..2 {
                let fd = (e_up[o] - e_dn[o]) / (2.0 * eps);
                assert!(
                    (analytic.d_params[(o, t)] - fd).abs() < 1e-6,
                    "param {t} obs {o}"
                );
            }
        }
        let e_up = eval(&[inputs[0] + eps], &params);
        let e_dn = eval(&[inputs[0] - eps], &params);
        for o in 0..2 {
            let fd = (e_up[o] - e_dn[o]) / (2.0 * eps);
            assert!(
                (analytic.d_inputs[(o, 0)] - fd).abs() < 1e-6,
                "input obs {o}"
            );
        }
    }

    #[test]
    fn noise_shrinks_gradients() {
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Trainable(0));
        let obs = z_all(1);
        let clean = parameter_shift_noisy(
            &c,
            &[],
            &[0.9],
            &obs,
            &crate::noise::NoiseModel::noiseless(),
        );
        let noisy = parameter_shift_noisy(
            &c,
            &[],
            &[0.9],
            &obs,
            &crate::noise::NoiseModel::depolarizing(0.3),
        );
        assert!(noisy.d_params[(0, 0)].abs() < clean.d_params[(0, 0)].abs());
    }

    #[test]
    #[should_panic(expected = "one gate")]
    fn noisy_shift_rejects_shared_slots() {
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Trainable(0));
        c.rx(1, ParamSource::Trainable(0));
        let _ = parameter_shift_noisy(
            &c,
            &[],
            &[0.1],
            &z_all(2),
            &crate::noise::NoiseModel::noiseless(),
        );
    }

    #[test]
    fn finite_diff_rejects_nonpositive_eps() {
        let c = Circuit::new(1);
        let result = std::panic::catch_unwind(|| finite_diff(&c, &[], &[], &[], 0.0));
        assert!(result.is_err());
    }
}
