//! ASCII circuit rendering and whole-circuit unitary extraction.
//!
//! [`render_ascii`] draws a circuit as wire-per-line text (the textual
//! counterpart of the paper's Fig. 5 circuit diagrams); [`unitary`] builds
//! the full `2ⁿ × 2ⁿ` matrix of a circuit by running it on every basis
//! state — small circuits only, used for equivalence checking and tests.

use crate::circuit::{Circuit, ParamSource, Wires};
use crate::complex::C64;
use crate::gates::GateKind;
use crate::state::StateVector;

/// Maximum width for [`unitary`] extraction (an 8-qubit unitary is already
/// 65 536 complex entries).
pub const MAX_UNITARY_QUBITS: usize = 8;

fn gate_symbol(kind: GateKind, param: &ParamSource) -> String {
    let base = match kind {
        GateKind::I => "I",
        GateKind::H => "H",
        GateKind::X => "X",
        GateKind::Y => "Y",
        GateKind::Z => "Z",
        GateKind::S => "S",
        GateKind::Sdg => "S†",
        GateKind::T => "T",
        GateKind::Tdg => "T†",
        GateKind::RX | GateKind::Crx => "RX",
        GateKind::RY | GateKind::Cry => "RY",
        GateKind::RZ | GateKind::Crz => "RZ",
        GateKind::PhaseShift => "P",
        GateKind::Cnot => "X",
        GateKind::Cz => "Z",
        GateKind::Swap => "×",
    };
    match param {
        ParamSource::None => base.to_string(),
        ParamSource::Fixed(v) => format!("{base}({v:.2})"),
        ParamSource::Input(i) => format!("{base}(x{i})"),
        ParamSource::Trainable(i) => format!("{base}(θ{i})"),
    }
}

/// Renders the circuit as one text line per wire, gates in column order —
/// e.g. for the paper's Fig. 5(a) BEL layer:
///
/// ```text
/// q0: ─RX(θ0)─●────────X─
/// q1: ─RX(θ1)─X─●──────│─
/// q2: ─RX(θ2)───X─●────●─  (schematic)
/// ```
///
/// Control qubits are drawn as `●`, the controlled operation as its gate
/// symbol, and intermediate wires crossed by a connection as `│`.
pub fn render_ascii(circuit: &Circuit) -> String {
    let n = circuit.n_qubits();
    // One column per op; each column is a vec of per-wire cell strings.
    let mut columns: Vec<Vec<String>> = Vec::with_capacity(circuit.ops().len());
    for op in circuit.ops() {
        let mut col = vec![String::new(); n];
        match op.wires {
            Wires::One(w) => col[w] = gate_symbol(op.kind, &op.param),
            Wires::Two(a, b) => {
                match op.kind {
                    GateKind::Swap => {
                        col[a] = "×".to_string();
                        col[b] = "×".to_string();
                    }
                    _ => {
                        col[a] = "●".to_string();
                        col[b] = gate_symbol(op.kind, &op.param);
                    }
                }
                let (lo, hi) = (a.min(b), a.max(b));
                for cell in col.iter_mut().take(hi).skip(lo + 1) {
                    if cell.is_empty() {
                        *cell = "│".to_string();
                    }
                }
            }
        }
        columns.push(col);
    }

    // Pad each column to a uniform display width.
    let widths: Vec<usize> = columns
        .iter()
        .map(|col| {
            col.iter()
                .map(|c| c.chars().count())
                .max()
                .unwrap_or(1)
                .max(1)
        })
        .collect();

    let mut out = String::new();
    for wire in 0..n {
        out.push_str(&format!("q{wire}: ─"));
        for (col, &width) in columns.iter().zip(&widths) {
            let cell = &col[wire];
            let pad = width - cell.chars().count();
            if cell.is_empty() {
                out.push_str(&"─".repeat(width));
            } else {
                out.push_str(cell);
                out.push_str(&"─".repeat(pad));
            }
            out.push('─');
        }
        out.push('\n');
    }
    out
}

/// Builds the full unitary matrix of a circuit (row-major, `dim × dim`)
/// by applying it to each computational basis state.
///
/// # Panics
///
/// Panics if the circuit needs inputs/params beyond those provided, or has
/// more than [`MAX_UNITARY_QUBITS`] wires.
pub fn unitary(circuit: &Circuit, inputs: &[f64], params: &[f64]) -> Vec<C64> {
    let n = circuit.n_qubits();
    assert!(
        n <= MAX_UNITARY_QUBITS,
        "{n} qubits exceeds MAX_UNITARY_QUBITS = {MAX_UNITARY_QUBITS}"
    );
    let dim = 1usize << n;
    let mut u = vec![C64::ZERO; dim * dim];
    for basis in 0..dim {
        let mut amps = vec![C64::ZERO; dim];
        amps[basis] = C64::ONE;
        let mut state = StateVector::from_amplitudes(amps);
        for op in circuit.ops() {
            Circuit::apply_op(op, &mut state, inputs, params);
        }
        // Column `basis` of U is the image of |basis⟩.
        for (row, amp) in state.amplitudes().iter().enumerate() {
            u[row * dim + basis] = *amp;
        }
    }
    u
}

/// `true` when the extracted matrix is unitary to within `tol`
/// (`U·U† ≈ I`).
pub fn is_unitary_matrix(u: &[C64], dim: usize, tol: f64) -> bool {
    assert_eq!(u.len(), dim * dim, "matrix size mismatch");
    for r in 0..dim {
        for c in 0..dim {
            let mut acc = C64::ZERO;
            for k in 0..dim {
                acc += u[r * dim + k] * u[c * dim + k].conj();
            }
            let expected = if r == c { C64::ONE } else { C64::ZERO };
            if !acc.approx_eq(expected, tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{EntanglerKind, QnnTemplate};
    use crate::circuit::ParamSource;

    #[test]
    fn ascii_renders_every_wire_and_gate() {
        let t = QnnTemplate::new(3, 2, EntanglerKind::Basic);
        let text = render_ascii(&t.build());
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("q0:"));
        assert!(text.contains("RX(x0)"), "encoding gate missing:\n{text}");
        assert!(text.contains("RX(θ0)"), "trainable gate missing:\n{text}");
        assert!(text.contains('●'), "control dot missing:\n{text}");
    }

    #[test]
    fn ascii_sel_shows_rot_decomposition() {
        let t = QnnTemplate::new(3, 1, EntanglerKind::Strong);
        let text = render_ascii(&t.build());
        assert!(text.contains("RZ(θ0)"));
        assert!(text.contains("RY(θ1)"));
        assert!(text.contains("RZ(θ2)"));
    }

    #[test]
    fn ascii_draws_connection_through_middle_wires() {
        let mut c = Circuit::new(3);
        c.cnot(0, 2);
        let text = render_ascii(&c);
        let q1_line = text.lines().nth(1).expect("three lines");
        assert!(q1_line.contains('│'), "no bridge on middle wire: {q1_line}");
    }

    #[test]
    fn ascii_swap_uses_cross_markers() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let text = render_ascii(&c);
        assert_eq!(text.matches('×').count(), 2);
    }

    #[test]
    fn unitary_of_x_is_permutation() {
        let mut c = Circuit::new(1);
        c.x(0);
        let u = unitary(&c, &[], &[]);
        assert!(u[0].approx_eq(C64::ZERO, 1e-12));
        assert!(u[1].approx_eq(C64::ONE, 1e-12));
        assert!(u[2].approx_eq(C64::ONE, 1e-12));
        assert!(u[3].approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn extracted_unitaries_are_unitary() {
        for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
            let t = QnnTemplate::new(3, 2, kind);
            let c = t.build();
            let inputs = [0.3, -0.4, 0.9];
            let params: Vec<f64> = (0..t.param_count()).map(|i| 0.2 * i as f64).collect();
            let u = unitary(&c, &inputs, &params);
            assert!(is_unitary_matrix(&u, 8, 1e-10), "{kind:?}");
        }
    }

    #[test]
    fn unitary_reproduces_state_evolution() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.rx(1, ParamSource::Fixed(0.8));
        c.cnot(0, 1);
        let u = unitary(&c, &[], &[]);
        let state = c.run(&[], &[]);
        // U|00⟩ = first column of U.
        for row in 0..4 {
            assert!(
                u[row * 4].approx_eq(state.amplitudes()[row], 1e-12),
                "row {row}"
            );
        }
    }

    #[test]
    fn cnot_unitary_matches_truth_table() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let u = unitary(&c, &[], &[]);
        // CNOT(control=0): |01⟩→|11⟩ (index 1→3), |11⟩→|01⟩.
        let expect_one = [(0usize, 0usize), (3, 1), (2, 2), (1, 3)];
        for (row, col) in expect_one {
            assert!(u[row * 4 + col].approx_eq(C64::ONE, 1e-12), "({row},{col})");
        }
    }

    #[test]
    #[should_panic(expected = "MAX_UNITARY_QUBITS")]
    fn unitary_rejects_wide_circuits() {
        let c = Circuit::new(9);
        let _ = unitary(&c, &[], &[]);
    }
}
