//! Circuit quality metrics: expressibility and entangling capability.
//!
//! The paper attributes the SEL hybrid's robustness to problem complexity to
//! its "more expressive" quantum layer (§III-C, §IV-B) but never quantifies
//! expressiveness. This module implements the two standard measures from
//! Sim, Johnson & Aspuru-Guzik (2019) so that claim becomes testable:
//!
//! * [`expressibility`] — KL divergence between the circuit's pairwise state
//!   fidelity distribution (under random parameters) and the Haar-random
//!   distribution `P(F) = (d-1)(1-F)^{d-2}`. **Lower = more expressive.**
//! * [`entangling_capability`] — mean Meyer–Wallach entanglement `Q` of the
//!   states the circuit prepares under random parameters. Higher = more
//!   entangling.
//!
//! The `expressibility` example and the workspace tests use these to verify
//! that SEL indeed dominates BEL at equal width/depth.

use crate::ansatz::QnnTemplate;
use crate::complex::C64;
use crate::state::StateVector;
use hqnn_tensor::SeededRng;

/// The single-qubit reduced density matrix of `wire`, obtained by tracing
/// out every other qubit of a pure state.
///
/// # Panics
///
/// Panics if `wire >= state.n_qubits()`.
pub fn reduced_density_matrix(state: &StateVector, wire: usize) -> [[C64; 2]; 2] {
    assert!(wire < state.n_qubits(), "wire {wire} out of range");
    let mask = 1usize << wire;
    let mut rho = [[C64::ZERO; 2]; 2];
    let amps = state.amplitudes();
    for (i, a) in amps.iter().enumerate() {
        if i & mask != 0 {
            continue;
        }
        let j = i | mask;
        let b = amps[j];
        rho[0][0] += *a * a.conj();
        rho[0][1] += *a * b.conj();
        rho[1][0] += b * a.conj();
        rho[1][1] += b * b.conj();
    }
    rho
}

/// The Meyer–Wallach global entanglement measure
/// `Q = 2·(1 − (1/n)·Σ_k Tr ρ_k²)` — 0 for product states, 1 for e.g.
/// Bell/GHZ states.
///
/// # Example
///
/// ```
/// use hqnn_qsim::{metrics::meyer_wallach, Circuit, StateVector};
///
/// // Product state → Q = 0.
/// assert!(meyer_wallach(&StateVector::new(2)).abs() < 1e-12);
///
/// // Bell state → Q = 1.
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cnot(0, 1);
/// assert!((meyer_wallach(&c.run(&[], &[])) - 1.0).abs() < 1e-12);
/// ```
pub fn meyer_wallach(state: &StateVector) -> f64 {
    let n = state.n_qubits();
    let mut purity_sum = 0.0;
    for wire in 0..n {
        let rho = reduced_density_matrix(state, wire);
        // Tr ρ² for a 2×2 Hermitian matrix.
        purity_sum += rho[0][0].norm_sqr() + rho[1][1].norm_sqr() + 2.0 * rho[0][1].norm_sqr();
    }
    2.0 * (1.0 - purity_sum / n as f64)
}

fn random_params(template: &QnnTemplate, rng: &mut SeededRng) -> Vec<f64> {
    (0..template.param_count())
        .map(|_| rng.uniform(0.0, 2.0 * std::f64::consts::PI))
        .collect()
}

fn random_state(template: &QnnTemplate, rng: &mut SeededRng) -> StateVector {
    let circuit = template.build();
    // Randomise the encoded inputs along with the weights: this is the
    // ensemble of states the layer actually produces inside a hybrid model
    // (and it avoids the |0…0⟩-pole artifact where SEL's leading RZ
    // rotations are inert).
    let inputs: Vec<f64> = (0..circuit.input_count())
        .map(|_| rng.uniform(-std::f64::consts::PI, std::f64::consts::PI))
        .collect();
    circuit.run(&inputs, &random_params(template, rng))
}

/// Mean Meyer–Wallach `Q` over `samples` random parameter draws (inputs
/// fixed at 0; the metric probes the variational part).
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn entangling_capability(template: &QnnTemplate, samples: usize, rng: &mut SeededRng) -> f64 {
    assert!(samples > 0, "need at least one sample");
    hqnn_tensor::fold::ordered_sum_f64(
        (0..samples).map(|_| meyer_wallach(&random_state(template, rng))),
    ) / samples as f64
}

/// Expressibility à la Sim et al.: the KL divergence
/// `D_KL(P_circuit(F) ‖ P_Haar(F))` estimated from `pairs` random state
/// pairs, with the fidelity axis discretised into `bins` buckets.
/// **Lower values mean the circuit explores state space more uniformly
/// (more expressive); 0 is Haar-random.**
///
/// # Panics
///
/// Panics if `pairs == 0` or `bins == 0`.
pub fn expressibility(
    template: &QnnTemplate,
    pairs: usize,
    bins: usize,
    rng: &mut SeededRng,
) -> f64 {
    assert!(pairs > 0, "need at least one pair");
    assert!(bins > 0, "need at least one bin");
    let mut histogram = vec![0usize; bins];
    for _ in 0..pairs {
        let a = random_state(template, rng);
        let b = random_state(template, rng);
        let fidelity = a.fidelity(&b).clamp(0.0, 1.0);
        let bin = ((fidelity * bins as f64) as usize).min(bins - 1);
        histogram[bin] += 1;
    }

    // Haar probability mass per bin: ∫ (d-1)(1-F)^{d-2} dF over the bin
    // = (1-F_lo)^{d-1} − (1-F_hi)^{d-1}.
    let d = (1usize << template.n_qubits()) as f64;
    let haar_mass = |lo: f64, hi: f64| (1.0 - lo).powf(d - 1.0) - (1.0 - hi).powf(d - 1.0);

    let mut kl = 0.0;
    for (bin, &count) in histogram.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let p = count as f64 / pairs as f64;
        let lo = bin as f64 / bins as f64;
        let hi = (bin + 1) as f64 / bins as f64;
        let q = haar_mass(lo, hi).max(1e-12);
        kl += p * (p / q).ln();
    }
    kl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::EntanglerKind;
    use crate::circuit::{Circuit, ParamSource};

    #[test]
    fn reduced_density_matrix_of_product_state() {
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Fixed(0.7));
        let state = c.run(&[], &[]);
        // Qubit 1 is untouched → ρ₁ = |0⟩⟨0|.
        let rho1 = reduced_density_matrix(&state, 1);
        assert!(rho1[0][0].approx_eq(C64::ONE, 1e-12));
        assert!(rho1[1][1].approx_eq(C64::ZERO, 1e-12));
        // Qubit 0 is pure → Tr ρ₀² = 1.
        let rho0 = reduced_density_matrix(&state, 0);
        let purity = rho0[0][0].norm_sqr() + rho0[1][1].norm_sqr() + 2.0 * rho0[0][1].norm_sqr();
        assert!((purity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn meyer_wallach_extremes() {
        // Product state: Q = 0.
        assert!(meyer_wallach(&StateVector::new(3)).abs() < 1e-12);
        // GHZ on 3 qubits: every single-qubit marginal is maximally mixed → Q = 1.
        let mut c = Circuit::new(3);
        c.h(0);
        c.cnot(0, 1);
        c.cnot(1, 2);
        assert!((meyer_wallach(&c.run(&[], &[])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn meyer_wallach_partial_entanglement_is_intermediate() {
        // RY(θ) then CNOT gives tunable entanglement between 0 and 1.
        let mut c = Circuit::new(2);
        c.ry(0, ParamSource::Fixed(0.6));
        c.cnot(0, 1);
        let q = meyer_wallach(&c.run(&[], &[]));
        assert!(q > 0.01 && q < 0.99, "Q = {q}");
    }

    #[test]
    fn entangling_capability_zero_without_entanglers() {
        // A single-qubit template can never entangle.
        let t = QnnTemplate::new(1, 3, EntanglerKind::Strong);
        let mut rng = SeededRng::new(1);
        assert!(entangling_capability(&t, 20, &mut rng).abs() < 1e-12);
    }

    #[test]
    fn both_templates_entangle_substantially() {
        // Entangling capability is comparable between the two designs (both
        // use CNOT rings); the *expressibility* axis is where they differ.
        let mut rng = SeededRng::new(5);
        let bel =
            entangling_capability(&QnnTemplate::new(3, 2, EntanglerKind::Basic), 60, &mut rng);
        let sel =
            entangling_capability(&QnnTemplate::new(3, 2, EntanglerKind::Strong), 60, &mut rng);
        assert!(sel > 0.4, "SEL Q = {sel}");
        assert!(bel > 0.4, "BEL Q = {bel}");
    }

    #[test]
    fn sel_is_more_expressible_than_bel() {
        // The quantitative backing for the paper's §III-C claim that SEL is
        // the "more expressive" design. The plug-in KL estimator carries a
        // positive bias of roughly `bins / (2·pairs)`, so the pair count
        // must be large and the bin count modest for the SEL–BEL gap to
        // dominate the estimation noise.
        let mut rng = SeededRng::new(9);
        for (qubits, depth) in [(3, 2), (4, 2)] {
            let bel = expressibility(
                &QnnTemplate::new(qubits, depth, EntanglerKind::Basic),
                6000,
                20,
                &mut rng,
            );
            let sel = expressibility(
                &QnnTemplate::new(qubits, depth, EntanglerKind::Strong),
                6000,
                20,
                &mut rng,
            );
            assert!(
                sel < bel,
                "({qubits},{depth}): expected SEL KL < BEL KL, got SEL {sel:.4} vs BEL {bel:.4}"
            );
        }
    }

    #[test]
    fn deeper_circuits_are_more_expressible() {
        let mut rng = SeededRng::new(11);
        let shallow = expressibility(
            &QnnTemplate::new(3, 1, EntanglerKind::Basic),
            400,
            40,
            &mut rng,
        );
        let deep = expressibility(
            &QnnTemplate::new(3, 6, EntanglerKind::Basic),
            400,
            40,
            &mut rng,
        );
        assert!(deep < shallow, "deep {deep:.4} ≥ shallow {shallow:.4}");
    }

    #[test]
    fn expressibility_is_deterministic_per_seed() {
        let t = QnnTemplate::new(2, 2, EntanglerKind::Strong);
        let a = expressibility(&t, 100, 20, &mut SeededRng::new(3));
        let b = expressibility(&t, 100, 20, &mut SeededRng::new(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn expressibility_rejects_zero_pairs() {
        let t = QnnTemplate::new(2, 1, EntanglerKind::Basic);
        let _ = expressibility(&t, 0, 10, &mut SeededRng::new(0));
    }
}
