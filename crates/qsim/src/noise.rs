//! Single-qubit noise channels and per-gate noise models.
//!
//! Each channel is a set of Kraus operators `{K_k}` with
//! `Σ K_k† K_k = I` (completeness is validated at construction).

use crate::complex::C64;
use crate::density::DensityMatrix;
use crate::gates::{dagger, matmul2, Matrix2};

/// A single-qubit quantum channel in Kraus form.
///
/// # Example
///
/// ```
/// use hqnn_qsim::NoiseChannel;
///
/// let dep = NoiseChannel::depolarizing(0.1);
/// assert_eq!(dep.kraus().len(), 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseChannel {
    name: String,
    kraus: Vec<Matrix2>,
}

impl NoiseChannel {
    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if the operators are empty or do not satisfy the completeness
    /// relation `Σ K† K = I` to within `1e-9`.
    pub fn from_kraus(name: impl Into<String>, kraus: Vec<Matrix2>) -> Self {
        assert!(
            !kraus.is_empty(),
            "channel needs at least one Kraus operator"
        );
        let mut sum = [[C64::ZERO; 2]; 2];
        for k in &kraus {
            let kk = matmul2(&dagger(k), k);
            for r in 0..2 {
                for c in 0..2 {
                    sum[r][c] += kk[r][c];
                }
            }
        }
        assert!(
            sum[0][0].approx_eq(C64::ONE, 1e-9)
                && sum[1][1].approx_eq(C64::ONE, 1e-9)
                && sum[0][1].approx_eq(C64::ZERO, 1e-9)
                && sum[1][0].approx_eq(C64::ZERO, 1e-9),
            "Kraus operators do not satisfy Σ K†K = I"
        );
        Self {
            name: name.into(),
            kraus,
        }
    }

    /// Depolarizing channel: with probability `p` the qubit is replaced by
    /// the maximally mixed state (`ρ → (1-p)ρ + p·I/2`).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let z = C64::ZERO;
        let i = C64::i();
        let k0 = C64::from((1.0 - 3.0 * p / 4.0).sqrt());
        let kp = C64::from((p / 4.0).sqrt());
        Self::from_kraus(
            format!("depolarizing({p})"),
            vec![
                [[k0, z], [z, k0]],
                [[z, kp], [kp, z]],          // √(p/4) X
                [[z, kp * -i], [kp * i, z]], // √(p/4) Y
                [[kp, z], [z, -kp]],         // √(p/4) Z
            ],
        )
    }

    /// Amplitude damping (T1 decay) with decay probability `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma ∉ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        let z = C64::ZERO;
        let o = C64::ONE;
        Self::from_kraus(
            format!("amplitude_damping({gamma})"),
            vec![
                [[o, z], [z, C64::from((1.0 - gamma).sqrt())]],
                [[z, C64::from(gamma.sqrt())], [z, z]],
            ],
        )
    }

    /// Phase damping (T2 dephasing) with probability `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda ∉ [0, 1]`.
    pub fn phase_damping(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        let z = C64::ZERO;
        let o = C64::ONE;
        Self::from_kraus(
            format!("phase_damping({lambda})"),
            vec![
                [[o, z], [z, C64::from((1.0 - lambda).sqrt())]],
                [[z, z], [z, C64::from(lambda.sqrt())]],
            ],
        )
    }

    /// Bit-flip channel: X applied with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let z = C64::ZERO;
        let keep = C64::from((1.0 - p).sqrt());
        let flip = C64::from(p.sqrt());
        Self::from_kraus(
            format!("bit_flip({p})"),
            vec![[[keep, z], [z, keep]], [[z, flip], [flip, z]]],
        )
    }

    /// The channel's Kraus operators.
    pub fn kraus(&self) -> &[Matrix2] {
        &self.kraus
    }

    /// Human-readable channel name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A gate-error noise model: every channel in the list is applied (in
/// order) to each wire a gate touched, immediately after the gate.
///
/// # Example
///
/// ```
/// use hqnn_qsim::{NoiseChannel, NoiseModel};
///
/// let noisy = NoiseModel::noiseless().with_channel(NoiseChannel::depolarizing(0.02));
/// assert!(!noisy.is_noiseless());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NoiseModel {
    channels: Vec<NoiseChannel>,
}

impl NoiseModel {
    /// The ideal (channel-free) model.
    pub fn noiseless() -> Self {
        Self::default()
    }

    /// A uniform depolarizing gate-error model, the standard one-parameter
    /// NISQ abstraction.
    pub fn depolarizing(p: f64) -> Self {
        Self::noiseless().with_channel(NoiseChannel::depolarizing(p))
    }

    /// Appends a channel (applied after the existing ones).
    pub fn with_channel(mut self, channel: NoiseChannel) -> Self {
        self.channels.push(channel);
        self
    }

    /// `true` when no channels are configured.
    pub fn is_noiseless(&self) -> bool {
        self.channels.is_empty()
    }

    /// The configured channels, in application order.
    pub fn channels(&self) -> &[NoiseChannel] {
        &self.channels
    }

    /// Applies all channels to one wire of `rho` (called by the simulator
    /// after each gate).
    pub fn apply_after_gate(&self, rho: &mut DensityMatrix, wire: usize) {
        for channel in &self.channels {
            rho.apply_kraus(channel.kraus(), wire);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, ParamSource};
    use crate::observable::Observable;

    #[test]
    fn all_builtin_channels_are_complete() {
        // Construction already validates completeness; exercise the range.
        for p in [0.0, 0.1, 0.5, 1.0] {
            let _ = NoiseChannel::depolarizing(p);
            let _ = NoiseChannel::amplitude_damping(p);
            let _ = NoiseChannel::phase_damping(p);
            let _ = NoiseChannel::bit_flip(p);
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn depolarizing_rejects_bad_probability() {
        let _ = NoiseChannel::depolarizing(1.5);
    }

    #[test]
    #[should_panic(expected = "Σ K†K = I")]
    fn from_kraus_validates_completeness() {
        let z = C64::ZERO;
        let half = C64::from(0.5);
        let _ = NoiseChannel::from_kraus("broken", vec![[[half, z], [z, half]]]);
    }

    #[test]
    fn noise_preserves_trace() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cnot(0, 1);
        c.rx(1, ParamSource::Fixed(0.9));
        for model in [
            NoiseModel::depolarizing(0.05),
            NoiseModel::noiseless().with_channel(NoiseChannel::amplitude_damping(0.1)),
            NoiseModel::noiseless()
                .with_channel(NoiseChannel::phase_damping(0.07))
                .with_channel(NoiseChannel::bit_flip(0.02)),
        ] {
            let rho = DensityMatrix::run_noisy(&c, &[], &[], &model);
            assert!((rho.trace().re - 1.0).abs() < 1e-10, "{model:?}");
            assert!(rho.purity() <= 1.0 + 1e-10);
        }
    }

    #[test]
    fn depolarizing_shrinks_expectations() {
        // RX(θ)|0⟩ has ⟨Z⟩ = cos θ; a depolarizing gate error shrinks it by
        // exactly (1 - p).
        let theta = 0.8;
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Fixed(theta));
        let ideal = theta.cos();
        for p in [0.0, 0.1, 0.3] {
            let rho = DensityMatrix::run_noisy(&c, &[], &[], &NoiseModel::depolarizing(p));
            let z = rho.expectation_z(0);
            assert!((z - (1.0 - p) * ideal).abs() < 1e-10, "p = {p}: {z}");
        }
    }

    #[test]
    fn full_depolarizing_yields_maximally_mixed() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cnot(0, 1);
        let rho = DensityMatrix::run_noisy(&c, &[], &[], &NoiseModel::depolarizing(1.0));
        assert!(
            (rho.purity() - 0.25).abs() < 1e-9,
            "purity {}",
            rho.purity()
        );
        assert!(rho.expectation_z(0).abs() < 1e-10);
    }

    #[test]
    fn amplitude_damping_relaxes_towards_ground() {
        let mut c = Circuit::new(1);
        c.x(0); // |1⟩
        let model = NoiseModel::noiseless().with_channel(NoiseChannel::amplitude_damping(0.4));
        let rho = DensityMatrix::run_noisy(&c, &[], &[], &model);
        // P(|1⟩) decays from 1 to 1 - γ.
        assert!((rho.probability(1) - 0.6).abs() < 1e-10);
        assert!((rho.probability(0) - 0.4).abs() < 1e-10);
    }

    #[test]
    fn phase_damping_kills_coherences_not_populations() {
        let mut c = Circuit::new(1);
        c.h(0);
        let model = NoiseModel::noiseless().with_channel(NoiseChannel::phase_damping(1.0));
        let rho = DensityMatrix::run_noisy(&c, &[], &[], &model);
        // Populations stay 1/2; coherence (off-diagonal) is destroyed,
        // so ⟨X⟩ drops from 1 to 0.
        assert!((rho.probability(0) - 0.5).abs() < 1e-10);
        assert!(rho.expectation(&Observable::x(0)).abs() < 1e-10);
    }

    #[test]
    fn noise_degrades_entanglement_monotonically() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cnot(0, 1);
        let zz = Observable::pauli_string([
            (0, crate::observable::Pauli::Z),
            (1, crate::observable::Pauli::Z),
        ]);
        let mut last = f64::INFINITY;
        for p in [0.0, 0.05, 0.15, 0.3] {
            let rho = DensityMatrix::run_noisy(&c, &[], &[], &NoiseModel::depolarizing(p));
            let corr = rho.expectation(&zz);
            assert!(corr < last + 1e-12, "p = {p}");
            last = corr;
        }
    }
}
