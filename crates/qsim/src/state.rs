//! Dense statevector and gate application kernels.
//!
//! The kernels live as free functions over `&mut [C64]` so the same code —
//! and therefore the exact same per-amplitude FP expressions — runs whether
//! the buffer is one row's `StateVector` or a whole batch chunk's contiguous
//! [`crate::BatchState`]. Every kernel only requires the buffer length to be
//! a multiple of its largest block (`2·stride`), which a concatenation of
//! `2^n`-amplitude rows always satisfies for in-row wires; applied to such a
//! buffer, a kernel transforms every row exactly as it would transform each
//! row individually, pair for pair, in the same in-row order.

use std::fmt;

use crate::complex::C64;
use crate::gates::{Matrix2, Matrix4};
use crate::MAX_QUBITS;

/// Applies a single-qubit unitary on wire `target` to every `2^n`-row of
/// `amps` (see module docs). Walks `2·stride` blocks, splitting each into
/// its target-0 / target-1 halves so the inner pair loop runs over two
/// contiguous slices with no per-iteration bounds checks — shaped for
/// autovectorisation. Arithmetic is the exact `m·(a, b)ᵀ` expression per
/// pair, bitwise identical to a scalar reference loop.
pub(crate) fn apply_single_amps(amps: &mut [C64], m: &Matrix2, target: usize) {
    let stride = 1usize << target;
    debug_assert_eq!(amps.len() % (stride << 1), 0);
    let (m00, m01, m10, m11) = (m[0][0], m[0][1], m[1][0], m[1][1]);
    for block in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = block.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = (*a, *b);
            *a = m00 * x + m01 * y;
            *b = m10 * x + m11 * y;
        }
    }
}

/// Applies `m` to every amplitude pair whose index has the control bit set
/// and the target bit clear — the shared pair walk behind
/// [`StateVector::apply_controlled`] and
/// [`StateVector::apply_controlled_projected`]. Only control-1 pairs (a
/// quarter of the buffer) are enumerated, never the control-0 subspace.
///
/// Two enumeration shapes, picked by the larger pinned-bit stride. When it
/// is small (adjacent low wires — the ring-entangler common case) a nested
/// block walk degenerates into per-pair loop setup, so a single flat loop
/// reconstructs each pair index by depositing the two pinned bits. When it
/// is large, blocks are long and a nested walk with contiguous branch-free
/// inner runs wins. Both shapes visit the same pairs with the same
/// expressions, so the choice never affects results.
pub(crate) fn transform_control1_pairs_amps(
    amps: &mut [C64],
    m: &Matrix2,
    c_stride: usize,
    t_stride: usize,
) {
    let run = t_stride.min(c_stride);
    let big = t_stride.max(c_stride);
    let len = amps.len();
    debug_assert_eq!(len % (big << 1), 0);
    let (m00, m01, m10, m11) = (m[0][0], m[0][1], m[1][0], m[1][1]);
    if big <= 64 {
        // Flat walk: pair p's index is p's bits with a 0 deposited at
        // the target bit position and a 1 at the control bit position.
        let a_bit = run.trailing_zeros();
        let b_bit = big.trailing_zeros();
        let low_mask = run - 1;
        let mid_mask = (big >> 1) - 1;
        for p in 0..len >> 2 {
            let lo = p & low_mask;
            let mid = (p & mid_mask) >> a_bit;
            let hi = p >> (b_bit - 1);
            let i = lo | (mid << (a_bit + 1)) | (hi << (b_bit + 1)) | c_stride;
            let (x, y) = (amps[i], amps[i + t_stride]);
            amps[i] = m00 * x + m01 * y;
            amps[i + t_stride] = m10 * x + m11 * y;
        }
        return;
    }
    let mut hi = 0;
    while hi < len {
        let mut mid = 0;
        while mid < big {
            let base = hi + mid + c_stride;
            let block = &mut amps[base..base + t_stride + run];
            let (lo_half, hi_half) = block.split_at_mut(t_stride);
            for (a, b) in lo_half[..run].iter_mut().zip(hi_half.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = m00 * x + m01 * y;
                *b = m10 * x + m11 * y;
            }
            mid += run << 1;
        }
        hi += big << 1;
    }
}

/// Zeroes every amplitude whose control bit is clear (both target halves) —
/// the projection step of [`StateVector::apply_controlled_projected`].
pub(crate) fn zero_control0_amps(amps: &mut [C64], c_stride: usize) {
    for block in amps.chunks_exact_mut(c_stride << 1) {
        block[..c_stride].fill(C64::ZERO);
    }
}

/// Swaps wires `a` and `b` in every row of `amps`.
pub(crate) fn apply_swap_amps(amps: &mut [C64], a: usize, b: usize) {
    let (ma, mb) = (1usize << a, 1usize << b);
    for i in 0..amps.len() {
        // Visit each (01, 10) pair exactly once.
        if i & ma != 0 && i & mb == 0 {
            let j = (i & !ma) | mb;
            amps.swap(i, j);
        }
    }
}

/// Applies a 4×4 unitary on the wire pair `(low, high)` (`low < high`) to
/// every row of `amps` — the dedicated pair-quad kernel behind fused
/// two-qubit ops.
///
/// Two enumeration shapes, picked by the high-wire stride (the same policy
/// as [`transform_control1_pairs_amps`]). Adjacent low wires — the
/// ring-entangler common case — make the nested block walk degenerate into
/// per-quad loop setup over one-element slices, so a flat loop reconstructs
/// each quad's base index by depositing zero bits at both wire positions.
/// Large strides get the nested walk: `2·high_stride` super-blocks split
/// into high-0/high-1 halves, whose aligned `2·low_stride` sub-blocks split
/// again into low-0/low-1 quarters, giving four zipped branch-free slices.
/// Both shapes visit the same quads with the same expressions — quad basis
/// `(b_hi b_lo) = 00, 01, 10, 11` matching the [`Matrix4`] layout — so the
/// choice never affects results.
pub(crate) fn apply_pair_amps(amps: &mut [C64], m: &Matrix4, low: usize, high: usize) {
    debug_assert!(low < high);
    let sl = 1usize << low;
    let sh = 1usize << high;
    let len = amps.len();
    debug_assert_eq!(len % (sh << 1), 0);
    let [r0, r1, r2, r3] = *m;
    if sh <= 64 {
        // Flat walk: quad q's base index is q's bits with a 0 deposited at
        // each of the two wire bit positions.
        let a_bit = low as u32;
        let b_bit = high as u32;
        let low_mask = sl - 1;
        let mid_mask = (sh >> 1) - 1;
        for q in 0..len >> 2 {
            let lo = q & low_mask;
            let mid = (q & mid_mask) >> a_bit;
            let hi = q >> (b_bit - 1);
            let i = lo | (mid << (a_bit + 1)) | (hi << (b_bit + 1));
            let (x0, x1, x2, x3) = (amps[i], amps[i + sl], amps[i + sh], amps[i + sl + sh]);
            amps[i] = r0[0] * x0 + r0[1] * x1 + r0[2] * x2 + r0[3] * x3;
            amps[i + sl] = r1[0] * x0 + r1[1] * x1 + r1[2] * x2 + r1[3] * x3;
            amps[i + sh] = r2[0] * x0 + r2[1] * x1 + r2[2] * x2 + r2[3] * x3;
            amps[i + sl + sh] = r3[0] * x0 + r3[1] * x1 + r3[2] * x2 + r3[3] * x3;
        }
        return;
    }
    for super_block in amps.chunks_exact_mut(sh << 1) {
        let (h0, h1) = super_block.split_at_mut(sh);
        for (b0, b1) in h0
            .chunks_exact_mut(sl << 1)
            .zip(h1.chunks_exact_mut(sl << 1))
        {
            let (q00, q01) = b0.split_at_mut(sl);
            let (q10, q11) = b1.split_at_mut(sl);
            for (((a00, a01), a10), a11) in q00
                .iter_mut()
                .zip(q01.iter_mut())
                .zip(q10.iter_mut())
                .zip(q11.iter_mut())
            {
                let (x0, x1, x2, x3) = (*a00, *a01, *a10, *a11);
                *a00 = r0[0] * x0 + r0[1] * x1 + r0[2] * x2 + r0[3] * x3;
                *a01 = r1[0] * x0 + r1[1] * x1 + r1[2] * x2 + r1[3] * x3;
                *a10 = r2[0] * x0 + r2[1] * x1 + r2[2] * x2 + r2[3] * x3;
                *a11 = r3[0] * x0 + r3[1] * x1 + r3[2] * x2 + r3[3] * x3;
            }
        }
    }
}

/// Expectation value `⟨ψ|Z_wire|ψ⟩` over one row's amplitudes.
pub(crate) fn expectation_z_amps(amps: &[C64], wire: usize) -> f64 {
    let mask = 1usize << wire;
    hqnn_tensor::fold::ordered_sum_f64(amps.iter().enumerate().map(|(i, a)| {
        let sign = if i & mask == 0 { 1.0 } else { -1.0 };
        sign * a.norm_sqr()
    }))
}

/// A pure quantum state over `n` qubits, stored as 2ⁿ complex amplitudes in
/// little-endian wire order (wire `q` is bit `q` of the amplitude index).
///
/// # Example
///
/// ```
/// use hqnn_qsim::{GateKind, StateVector};
///
/// // Build the Bell state (|00⟩ + |11⟩)/√2.
/// let mut s = StateVector::new(2);
/// s.apply_single(&GateKind::H.matrix(0.0), 0);
/// s.apply_controlled(&GateKind::X.matrix(0.0), 0, 1);
/// assert!((s.probability(0) - 0.5).abs() < 1e-12);
/// assert!((s.probability(3) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the computational basis state `|0…0⟩` on `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0` or `n_qubits > MAX_QUBITS`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "state needs at least one qubit");
        assert!(
            n_qubits <= MAX_QUBITS,
            "{n_qubits} qubits exceeds MAX_QUBITS = {MAX_QUBITS}"
        );
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        amps[0] = C64::ONE;
        Self { n_qubits, amps }
    }

    /// Creates a state from explicit amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the amplitude count is not a power of two ≥ 2, exceeds
    /// `2^MAX_QUBITS`, or the vector is not normalised to within `1e-9`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len >= 2 && len.is_power_of_two(),
            "amplitude count {len} is not a power of two >= 2"
        );
        let n_qubits = len.trailing_zeros() as usize;
        assert!(n_qubits <= MAX_QUBITS, "too many qubits");
        let norm: f64 = hqnn_tensor::fold::ordered_sum_f64(amps.iter().map(|a| a.norm_sqr()));
        assert!(
            (norm - 1.0).abs() < 1e-9,
            "state is not normalised: |ψ|² = {norm}"
        );
        Self { n_qubits, amps }
    }

    /// Wraps amplitudes produced by an internal evolution path without the
    /// O(2ⁿ) normalisation re-check of [`StateVector::from_amplitudes`] —
    /// for [`crate::BatchState`] rows, which are unitary images of `|0…0⟩`.
    pub(crate) fn from_raw(n_qubits: usize, amps: Vec<C64>) -> Self {
        debug_assert_eq!(amps.len(), 1usize << n_qubits);
        Self { n_qubits, amps }
    }

    /// Overwrites this state's amplitudes with `other`'s without
    /// reallocating — the adjoint engine's per-gate scratch buffer reuse.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different qubit counts.
    pub(crate) fn copy_amps_from(&mut self, other: &Self) {
        assert_eq!(self.n_qubits, other.n_qubits, "qubit count mismatch");
        self.amps.copy_from_slice(&other.amps);
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Borrow of the amplitude vector (length `2^n_qubits`).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn inner(&self, other: &Self) -> C64 {
        assert_eq!(self.n_qubits, other.n_qubits, "qubit count mismatch");
        hqnn_tensor::fold::ordered_sum(
            C64::ZERO,
            self.amps.iter().zip(&other.amps).map(|(a, b)| a.conj() * *b),
        )
    }

    /// `|ψ|²` — should be 1 for any state produced by unitary evolution.
    pub fn norm_sqr(&self) -> f64 {
        hqnn_tensor::fold::ordered_sum_f64(self.amps.iter().map(|a| a.norm_sqr()))
    }

    /// Probability of measuring computational basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n_qubits`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// All basis-state probabilities, in index order.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Fidelity `|⟨self|other⟩|²` between two pure states.
    pub fn fidelity(&self, other: &Self) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Applies a single-qubit unitary to `target`.
    ///
    /// The kernel walks the state in `2·stride` blocks and splits each block
    /// into its target-0 / target-1 halves, so the inner amplitude-pair loop
    /// runs over two contiguous slices with no per-iteration bounds checks
    /// or index arithmetic — shaped for autovectorisation. The arithmetic is
    /// the exact expression `m·(a, b)ᵀ` per pair, so results are bitwise
    /// identical to the scalar reference loop.
    ///
    /// # Panics
    ///
    /// Panics if `target >= n_qubits`.
    pub fn apply_single(&mut self, m: &Matrix2, target: usize) {
        assert!(target < self.n_qubits, "target wire {target} out of range");
        apply_single_amps(&mut self.amps, m, target);
    }

    /// Applies a single-qubit unitary to `target`, conditioned on `control`
    /// being `|1⟩` (covers CNOT, CZ, CRX, …).
    ///
    /// Only the control-1 amplitude pairs (a quarter of the state) are
    /// enumerated; the control-0 subspace is never touched or scanned.
    ///
    /// # Panics
    ///
    /// Panics if the wires coincide or are out of range.
    pub fn apply_controlled(&mut self, m: &Matrix2, control: usize, target: usize) {
        assert!(control < self.n_qubits, "control wire out of range");
        assert!(target < self.n_qubits, "target wire out of range");
        assert_ne!(control, target, "control and target must differ");
        transform_control1_pairs_amps(&mut self.amps, m, 1usize << control, 1usize << target);
    }

    /// Applies a 4×4 unitary to the wire pair `(low, high)`, with the
    /// [`Matrix4`] basis convention `b = 2·b_high + b_low` (little-endian,
    /// matching the global amplitude order). Used by fused two-qubit ops.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high < n_qubits`.
    pub fn apply_two(&mut self, m: &Matrix4, low: usize, high: usize) {
        assert!(high < self.n_qubits, "wire {high} out of range");
        assert!(low < high, "pair wires must satisfy low < high");
        apply_pair_amps(&mut self.amps, m, low, high);
    }

    /// Applies `(|1⟩⟨1| on control) ⊗ M` — the controlled *derivative*
    /// operator used by adjoint differentiation of controlled rotations.
    /// Unlike [`StateVector::apply_controlled`] this zeroes the control-0
    /// subspace instead of leaving it untouched.
    ///
    /// # Panics
    ///
    /// Panics if the wires coincide or are out of range.
    pub fn apply_controlled_projected(&mut self, m: &Matrix2, control: usize, target: usize) {
        assert!(control < self.n_qubits, "control wire out of range");
        assert!(target < self.n_qubits, "target wire out of range");
        assert_ne!(control, target, "control and target must differ");
        let c_stride = 1usize << control;
        // Zero every control-0 amplitude (both target halves), then
        // transform the surviving control-1 pairs.
        zero_control0_amps(&mut self.amps, c_stride);
        transform_control1_pairs_amps(&mut self.amps, m, c_stride, 1usize << target);
    }

    /// Swaps wires `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the wires coincide or are out of range.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits, "wire out of range");
        assert_ne!(a, b, "swap wires must differ");
        apply_swap_amps(&mut self.amps, a, b);
    }

    /// Expectation value `⟨ψ|Z_wire|ψ⟩ ∈ [-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= n_qubits`.
    pub fn expectation_z(&self, wire: usize) -> f64 {
        assert!(wire < self.n_qubits, "wire {wire} out of range");
        expectation_z_amps(&self.amps, wire)
    }

    /// `true` when all amplitudes are finite.
    pub fn all_finite(&self) -> bool {
        self.amps.iter().all(|a| a.is_finite())
    }

    /// Elementwise approximate equality of amplitudes.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.n_qubits == other.n_qubits
            && self
                .amps
                .iter()
                .zip(&other.amps)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }
}

impl fmt::Display for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "StateVector({} qubits) [", self.n_qubits)?;
        for (i, a) in self.amps.iter().enumerate() {
            if a.norm_sqr() > 1e-12 {
                writeln!(f, "  |{:0width$b}⟩: {a}", i, width = self.n_qubits)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateKind;

    #[test]
    fn new_state_is_ground() {
        let s = StateVector::new(3);
        assert_eq!(s.amplitudes()[0], C64::ONE);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(s.probability(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_rejected() {
        let _ = StateVector::new(0);
    }

    #[test]
    #[should_panic(expected = "MAX_QUBITS")]
    fn too_many_qubits_rejected() {
        let _ = StateVector::new(25);
    }

    #[test]
    fn x_flips_target_wire() {
        let mut s = StateVector::new(2);
        s.apply_single(&GateKind::X.matrix(0.0), 1);
        // |q1 q0⟩ = |10⟩ → index 2.
        assert_eq!(s.probability(2), 1.0);
    }

    #[test]
    fn hadamard_makes_uniform_superposition() {
        let mut s = StateVector::new(1);
        s.apply_single(&GateKind::H.matrix(0.0), 0);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cnot_truth_table() {
        // For each basis input, CNOT(control=0, target=1) flips bit 1 iff bit 0 set.
        for input in 0..4usize {
            let mut amps = vec![C64::ZERO; 4];
            amps[input] = C64::ONE;
            let mut s = StateVector::from_amplitudes(amps);
            s.apply_controlled(&GateKind::X.matrix(0.0), 0, 1);
            let expected = if input & 1 != 0 { input ^ 2 } else { input };
            assert!(
                (s.probability(expected) - 1.0).abs() < 1e-12,
                "input {input}"
            );
        }
    }

    #[test]
    fn bell_state_expectations() {
        let mut s = StateVector::new(2);
        s.apply_single(&GateKind::H.matrix(0.0), 0);
        s.apply_controlled(&GateKind::X.matrix(0.0), 0, 1);
        assert!(s.expectation_z(0).abs() < 1e-12);
        assert!(s.expectation_z(1).abs() < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rx_expectation_is_cosine() {
        for k in 0..10 {
            let theta = k as f64 * 0.37;
            let mut s = StateVector::new(1);
            s.apply_single(&GateKind::RX.matrix(theta), 0);
            assert!((s.expectation_z(0) - theta.cos()).abs() < 1e-12);
        }
    }

    #[test]
    fn swap_exchanges_wires() {
        let mut s = StateVector::new(2);
        s.apply_single(&GateKind::X.matrix(0.0), 0); // |01⟩ (index 1)
        s.apply_swap(0, 1);
        assert_eq!(s.probability(2), 1.0); // |10⟩
    }

    #[test]
    fn swap_matches_three_cnots() {
        let mut a = StateVector::new(3);
        a.apply_single(&GateKind::H.matrix(0.0), 0);
        a.apply_single(&GateKind::RY.matrix(0.7), 2);
        let mut b = a.clone();
        a.apply_swap(0, 2);
        let x = GateKind::X.matrix(0.0);
        b.apply_controlled(&x, 0, 2);
        b.apply_controlled(&x, 2, 0);
        b.apply_controlled(&x, 0, 2);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn inner_product_and_fidelity() {
        let s = StateVector::new(2);
        let mut t = StateVector::new(2);
        assert!((s.fidelity(&t) - 1.0).abs() < 1e-12);
        t.apply_single(&GateKind::X.matrix(0.0), 0);
        assert!(s.fidelity(&t) < 1e-12);
        assert_eq!(s.inner(&s), C64::ONE);
    }

    #[test]
    fn controlled_projected_zeroes_control_zero_subspace() {
        let mut s = StateVector::new(2);
        s.apply_single(&GateKind::H.matrix(0.0), 0);
        // After projection onto control=|1⟩ with identity on target,
        // only index 1 (|01⟩: q0=1) survives with amplitude 1/√2.
        s.apply_controlled_projected(&GateKind::I.matrix(0.0), 0, 1);
        assert!((s.amplitudes()[1].norm_sqr() - 0.5).abs() < 1e-12);
        assert_eq!(s.amplitudes()[0], C64::ZERO);
        assert_eq!(s.amplitudes()[2], C64::ZERO);
    }

    #[test]
    fn from_amplitudes_validates_norm() {
        let ok = StateVector::from_amplitudes(vec![C64::ONE, C64::ZERO]);
        assert_eq!(ok.n_qubits(), 1);
    }

    #[test]
    #[should_panic(expected = "not normalised")]
    fn from_amplitudes_rejects_unnormalised() {
        let _ = StateVector::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_amplitudes_rejects_bad_length() {
        let _ = StateVector::from_amplitudes(vec![C64::ONE, C64::ZERO, C64::ZERO]);
    }

    #[test]
    fn display_shows_nonzero_amplitudes() {
        let s = StateVector::new(2);
        let txt = s.to_string();
        assert!(txt.contains("|00⟩"));
        assert!(!txt.contains("|01⟩"));
    }

    #[test]
    fn apply_two_matches_embedded_singles() {
        use crate::gates::{embed_controlled, embed_single, matmul4};
        // RX on low wire, RY on high wire, then CNOT(high→low), fused into
        // one Matrix4, must match the sequential applications exactly.
        let rx = GateKind::RX.matrix(0.9);
        let ry = GateKind::RY.matrix(-0.4);
        let x = GateKind::X.matrix(0.0);
        for (low, high, n) in [(0usize, 1usize, 2usize), (0, 2, 3), (1, 2, 4)] {
            let mut a = StateVector::new(n);
            a.apply_single(&GateKind::H.matrix(0.0), 0);
            let mut b = a.clone();

            a.apply_single(&rx, low);
            a.apply_single(&ry, high);
            a.apply_controlled(&x, high, low);

            let mut m = embed_single(&rx, 0);
            m = matmul4(&embed_single(&ry, 1), &m);
            m = matmul4(&embed_controlled(&x, 1, 0), &m);
            b.apply_two(&m, low, high);

            assert!(a.approx_eq(&b, 1e-12), "pair ({low},{high}) on {n} qubits");
        }
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn apply_two_rejects_unsorted_wires() {
        let mut s = StateVector::new(2);
        s.apply_two(&crate::gates::identity4(), 1, 0);
    }

    #[test]
    fn kernels_treat_batch_buffer_as_independent_rows() {
        // Applying a kernel to a concatenation of rows must equal applying
        // it to each row individually, bitwise.
        let n = 3usize;
        let rows = 5usize; // deliberately not a power of two
        let dim = 1usize << n;
        let mk_row = |r: usize| {
            let mut s = StateVector::new(n);
            s.apply_single(&GateKind::RY.matrix(0.3 + r as f64), 0);
            s.apply_single(&GateKind::H.matrix(0.0), 2);
            s.apply_controlled(&GateKind::X.matrix(0.0), 2, 1);
            s
        };
        let mut batch: Vec<C64> = Vec::with_capacity(rows * dim);
        for r in 0..rows {
            batch.extend_from_slice(mk_row(r).amplitudes());
        }
        let m = GateKind::RZ.matrix(0.77);
        let m4 = crate::gates::embed_controlled(&GateKind::X.matrix(0.0), 0, 1);

        let mut per_row: Vec<StateVector> = (0..rows).map(mk_row).collect();
        for s in &mut per_row {
            s.apply_single(&m, 1);
            s.apply_controlled(&m, 0, 2);
            s.apply_swap(0, 1);
            s.apply_two(&m4, 1, 2);
        }
        apply_single_amps(&mut batch, &m, 1);
        transform_control1_pairs_amps(&mut batch, &m, 1 << 0, 1 << 2);
        apply_swap_amps(&mut batch, 0, 1);
        apply_pair_amps(&mut batch, &m4, 1, 2);

        for (r, want) in per_row.iter().enumerate() {
            let got = &batch[r * dim..(r + 1) * dim];
            assert_eq!(got, want.amplitudes(), "row {r}");
            assert_eq!(
                expectation_z_amps(got, 1).to_bits(),
                want.expectation_z(1).to_bits(),
                "row {r} expectation"
            );
        }
    }
}
