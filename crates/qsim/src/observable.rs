//! Observables: tensor products of Pauli operators.
//!
//! The hybrid models of the paper read out one `⟨Z⟩` per wire; the general
//! [`Observable`] type additionally supports arbitrary Pauli strings so the
//! simulator is usable beyond that special case.

use serde::{Deserialize, Serialize};

use crate::complex::C64;
use crate::gates::GateKind;
use crate::state::StateVector;

/// A single-qubit Pauli operator.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pauli {
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    fn gate(self) -> GateKind {
        match self {
            Pauli::X => GateKind::X,
            Pauli::Y => GateKind::Y,
            Pauli::Z => GateKind::Z,
        }
    }
}

/// A tensor product of Pauli operators on distinct wires
/// (identity on every unlisted wire).
///
/// # Example
///
/// ```
/// use hqnn_qsim::{Observable, Pauli, StateVector};
///
/// let zz = Observable::pauli_string([(0, Pauli::Z), (1, Pauli::Z)]);
/// let ground = StateVector::new(2);
/// assert_eq!(zz.expectation(&ground), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observable {
    factors: Vec<(usize, Pauli)>,
}

impl Observable {
    /// `Z` on a single wire — the readout the paper's hybrid models use.
    pub fn z(wire: usize) -> Self {
        Self {
            factors: vec![(wire, Pauli::Z)],
        }
    }

    /// `X` on a single wire.
    pub fn x(wire: usize) -> Self {
        Self {
            factors: vec![(wire, Pauli::X)],
        }
    }

    /// `Y` on a single wire.
    pub fn y(wire: usize) -> Self {
        Self {
            factors: vec![(wire, Pauli::Y)],
        }
    }

    /// A general Pauli string.
    ///
    /// # Panics
    ///
    /// Panics if the same wire appears twice or the string is empty.
    pub fn pauli_string(factors: impl IntoIterator<Item = (usize, Pauli)>) -> Self {
        let factors: Vec<_> = factors.into_iter().collect();
        assert!(
            !factors.is_empty(),
            "observable must have at least one factor"
        );
        for (i, (w, _)) in factors.iter().enumerate() {
            assert!(
                factors[i + 1..].iter().all(|(w2, _)| w2 != w),
                "wire {w} appears twice in Pauli string"
            );
        }
        Self { factors }
    }

    /// The `(wire, Pauli)` factors of the string.
    pub fn factors(&self) -> &[(usize, Pauli)] {
        &self.factors
    }

    /// The highest wire index this observable touches.
    pub fn max_wire(&self) -> usize {
        self.factors.iter().map(|(w, _)| *w).max().unwrap_or(0)
    }

    /// Applies the observable to a state in place: `|ψ⟩ → O|ψ⟩`.
    /// Pauli strings are unitary, so the result is still normalised; it is
    /// generally *not* the post-measurement state — this is the algebraic
    /// operator application used for expectations and adjoint seeds.
    ///
    /// # Panics
    ///
    /// Panics if a factor's wire is out of range for the state.
    pub fn apply_to(&self, state: &mut StateVector) {
        for &(wire, p) in &self.factors {
            state.apply_single(&p.gate().matrix(0.0), wire);
        }
    }

    /// Expectation value `⟨ψ|O|ψ⟩` (real, since Pauli strings are Hermitian).
    ///
    /// # Panics
    ///
    /// Panics if a factor's wire is out of range for the state.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        self.expectation_amps(state.n_qubits(), state.amplitudes())
    }

    /// Expectation over a raw amplitude slice (one batch row of a
    /// [`crate::BatchState`]). Shares the exact FP operation sequence with
    /// [`Self::expectation`] so batch layouts stay bitwise identical.
    pub(crate) fn expectation_amps(&self, n_qubits: usize, amps: &[C64]) -> f64 {
        // Fast path: a single-Z observable has a closed form.
        if let [(wire, Pauli::Z)] = self.factors[..] {
            assert!(wire < n_qubits, "wire {wire} out of range");
            return crate::state::expectation_z_amps(amps, wire);
        }
        let mut applied = amps.to_vec();
        for &(wire, p) in &self.factors {
            assert!(wire < n_qubits, "wire {wire} out of range");
            crate::state::apply_single_amps(&mut applied, &p.gate().matrix(0.0), wire);
        }
        // Same fold as `StateVector::inner` so the FP sequence matches.
        let e: C64 = hqnn_tensor::fold::ordered_sum(
            C64::ZERO,
            amps.iter().zip(&applied).map(|(a, b)| a.conj() * *b),
        );
        debug_assert!(e.im.abs() < 1e-9, "expectation should be real, got {e}");
        e.re
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, ParamSource};

    #[test]
    fn z_on_ground_state_is_one() {
        let s = StateVector::new(2);
        assert_eq!(Observable::z(0).expectation(&s), 1.0);
        assert_eq!(Observable::z(1).expectation(&s), 1.0);
    }

    #[test]
    fn z_on_excited_state_is_minus_one() {
        let mut c = Circuit::new(2);
        c.x(1);
        let s = c.run(&[], &[]);
        assert_eq!(Observable::z(1).expectation(&s), -1.0);
        assert_eq!(Observable::z(0).expectation(&s), 1.0);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = c.run(&[], &[]);
        assert!((Observable::x(0).expectation(&s) - 1.0).abs() < 1e-12);
        assert!(Observable::z(0).expectation(&s).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_after_rx() {
        // RX(θ)|0⟩ gives ⟨Y⟩ = -sin(θ).
        let theta = 0.8;
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Fixed(theta));
        let s = c.run(&[], &[]);
        assert!((Observable::y(0).expectation(&s) + theta.sin()).abs() < 1e-12);
    }

    #[test]
    fn zz_string_on_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cnot(0, 1);
        let s = c.run(&[], &[]);
        let zz = Observable::pauli_string([(0, Pauli::Z), (1, Pauli::Z)]);
        assert!((zz.expectation(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fast_path_matches_generic_path() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.rx(1, ParamSource::Fixed(0.4));
        c.cnot(0, 2);
        let s = c.run(&[], &[]);
        for w in 0..3 {
            let fast = Observable::z(w).expectation(&s);
            // Force the generic path with a cloned string observable.
            let generic = Observable::pauli_string([(w, Pauli::Z), ((w + 1) % 3, Pauli::Z)]);
            // Not the same observable — instead check the fast path against
            // direct statevector computation.
            assert!((fast - s.expectation_z(w)).abs() < 1e-15);
            let _ = generic.expectation(&s); // must not panic / stay real
        }
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_wire_rejected() {
        let _ = Observable::pauli_string([(0, Pauli::Z), (0, Pauli::X)]);
    }

    #[test]
    #[should_panic(expected = "at least one factor")]
    fn empty_string_rejected() {
        let _ = Observable::pauli_string(std::iter::empty());
    }

    #[test]
    fn max_wire_reports_extent() {
        let o = Observable::pauli_string([(2, Pauli::X), (5, Pauli::Z)]);
        assert_eq!(o.max_wire(), 5);
    }
}
