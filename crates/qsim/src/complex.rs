//! Minimal complex-number arithmetic.
//!
//! A dense statevector simulator only needs add/sub/mul/conjugate/modulus on
//! `f64` pairs, so rather than pulling in an external crate the type is
//! defined here (the offline dependency allowlist does not include
//! `num-complex`).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use hqnn_qsim::C64;
///
/// let i = C64::i();
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert_eq!(C64::new(3.0, 4.0).norm_sqr(), 25.0);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The imaginary unit `i`.
    pub const fn i() -> Self {
        Self { re: 0.0, im: 1.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `true` when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality of both components with tolerance `tol`.
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        hqnn_tensor::approx_eq(self.re, other.re, tol)
            && hqnn_tensor::approx_eq(self.im, other.im, tol)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Add for C64 {
    type Output = C64;

    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;

    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;

    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for C64 {
    type Output = C64;

    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Neg for C64 {
    type Output = C64;

    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(2.0, -3.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert_eq!(-z + z, C64::ZERO);
    }

    #[test]
    fn multiplication_matches_formula() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, C64::new(5.0, 5.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert_eq!((z * z.conj()).re, 25.0);
        assert_eq!(z.norm(), 5.0);
    }

    #[test]
    fn polar_unit_is_on_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            let z = C64::from_polar_unit(theta);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn i_squares_to_minus_one() {
        assert_eq!(C64::i() * C64::i(), C64::new(-1.0, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn from_real() {
        assert_eq!(C64::from(2.5), C64::new(2.5, 0.0));
    }

    #[test]
    fn finite_detection() {
        assert!(C64::new(1.0, 2.0).is_finite());
        assert!(!C64::new(f64::NAN, 0.0).is_finite());
        assert!(!C64::new(0.0, f64::INFINITY).is_finite());
    }
}
