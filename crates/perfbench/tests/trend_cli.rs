//! CLI regression tests for `perfbench --trend` on absent history.
//!
//! A fresh checkout has no `bench/history/` directory and a fresh CI cache
//! has an empty one; both used to exit 2, failing pipelines that merely
//! wanted a trend report "if there is one". Both must now print a friendly
//! "no history yet" note and exit 0 (real IO errors still exit non-zero).

use std::path::PathBuf;
use std::process::Command;

fn perfbench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_perfbench"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hqnn-trend-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn trend_on_missing_history_dir_is_a_clean_noop() {
    let dir = scratch_dir("missing");
    let out = perfbench()
        .arg("--trend")
        .arg(&dir)
        .output()
        .expect("run perfbench");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}; stdout={stdout} stderr={}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("no history yet"),
        "stdout should explain the empty state: {stdout}"
    );
}

#[test]
fn trend_on_empty_history_dir_is_a_clean_noop_and_writes_trend_out() {
    let dir = scratch_dir("empty");
    std::fs::create_dir_all(&dir).expect("create empty history dir");
    let report = dir.join("trend.txt");
    let out = perfbench()
        .arg("--trend")
        .arg(&dir)
        .arg("--trend-out")
        .arg(&report)
        .output()
        .expect("run perfbench");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}; stdout={stdout} stderr={}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("no history yet"), "stdout: {stdout}");
    // CI uploads the --trend-out path unconditionally, so the file must
    // exist even when there is nothing to report.
    let written = std::fs::read_to_string(&report).expect("trend-out written");
    assert!(written.contains("no history yet"), "trend-out: {written}");
    let _ = std::fs::remove_dir_all(&dir);
}
