//! End-to-end tests of the regression gate and the `BENCH_*.json` schema:
//! the gate must fail on clear regressions, pass clear improvements and
//! within-noise deltas, and the JSON layout must stay parseable by the
//! vendored `serde_json` (old baselines must keep loading).

use hqnn_perfbench::{
    compare, has_regressions, missing_ids, BenchReport, BenchResult, GateConfig, Summary, Verdict,
    REFERENCE_BENCH, SCHEMA_VERSION,
};
use hqnn_telemetry::RunManifest;

fn result(id: &str, median_ns: u64, mad_ns: u64) -> BenchResult {
    BenchResult::from_summary(
        id,
        2,
        Summary {
            iters: 20,
            median_ns,
            mad_ns,
            min_ns: median_ns.saturating_sub(2 * mad_ns),
            max_ns: median_ns + 2 * mad_ns,
            mean_ns: median_ns,
        },
        1,
        "iters",
        Some(median_ns * 10),
    )
}

fn report(results: Vec<BenchResult>) -> BenchReport {
    BenchReport::new(RunManifest::capture("gate-test"), results)
}

#[test]
fn clear_improvement_passes_the_gate() {
    let baseline = report(vec![result("a", 1_000_000, 10_000)]);
    let current = report(vec![result("a", 500_000, 10_000)]);
    let cmp = compare(&baseline, &current, &GateConfig::default());
    assert_eq!(cmp.len(), 1);
    assert_eq!(cmp[0].verdict, Verdict::Improvement);
    assert!((cmp[0].delta + 0.5).abs() < 1e-9);
    assert!(!has_regressions(&cmp));
}

#[test]
fn clear_regression_fails_the_gate() {
    let baseline = report(vec![result("a", 1_000_000, 10_000)]);
    let current = report(vec![result("a", 2_000_000, 10_000)]);
    let cmp = compare(&baseline, &current, &GateConfig::default());
    assert_eq!(cmp[0].verdict, Verdict::Regression);
    assert!((cmp[0].delta - 1.0).abs() < 1e-9);
    assert!(has_regressions(&cmp));
}

#[test]
fn within_noise_delta_passes() {
    // +6% slowdown with a 10% relative floor: within noise.
    let baseline = report(vec![result("a", 1_000_000, 5_000)]);
    let current = report(vec![result("a", 1_060_000, 5_000)]);
    let cmp = compare(&baseline, &current, &GateConfig::default());
    assert_eq!(cmp[0].verdict, Verdict::WithinNoise);
    assert!(!has_regressions(&cmp));
}

#[test]
fn noisy_benchmarks_get_a_wider_band() {
    // MAD of 200k on a 1ms median → allowed = 4 × 0.2 = 80%, so a +50%
    // delta that would fail a quiet benchmark stays within noise here.
    let baseline = report(vec![result("a", 1_000_000, 200_000)]);
    let current = report(vec![result("a", 1_500_000, 200_000)]);
    let cmp = compare(&baseline, &current, &GateConfig::default());
    assert!((cmp[0].allowed - 0.8).abs() < 1e-9);
    assert_eq!(cmp[0].verdict, Verdict::WithinNoise);

    // The same +50% with quiet timings on both sides is a regression (the
    // band takes the larger of the two MADs, so both must be quiet).
    let quiet_base = report(vec![result("a", 1_000_000, 1_000)]);
    let quiet_current = report(vec![result("a", 1_500_000, 1_000)]);
    let cmp = compare(&quiet_base, &quiet_current, &GateConfig::default());
    assert_eq!(cmp[0].verdict, Verdict::Regression);
}

#[test]
fn new_and_missing_benchmarks_are_flagged_but_not_regressions() {
    let baseline = report(vec![result("removed", 1_000, 10)]);
    let current = report(vec![result("added", 2_000, 10)]);
    let cmp = compare(&baseline, &current, &GateConfig::default());
    assert_eq!(cmp.len(), 2);
    assert_eq!(cmp[0].id, "removed");
    assert_eq!(cmp[0].verdict, Verdict::Missing);
    assert_eq!(cmp[1].id, "added");
    assert_eq!(cmp[1].verdict, Verdict::New);
    // Missing is not a *regression* — but the CLI `--check` still fails on
    // it (lost coverage) unless `--allow-missing`; see `missing_ids`.
    assert!(!has_regressions(&cmp));
    assert_eq!(missing_ids(&cmp), vec!["removed"]);
}

#[test]
fn missing_ids_preserve_baseline_order_and_ignore_other_verdicts() {
    let baseline = report(vec![
        result("kept", 1_000, 10),
        result("gone.z", 1_000, 10),
        result("gone.a", 1_000, 10),
    ]);
    let current = report(vec![result("kept", 1_001, 10), result("new", 5, 1)]);
    let cmp = compare(&baseline, &current, &GateConfig::default());
    assert_eq!(missing_ids(&cmp), vec!["gone.z", "gone.a"]);

    let full = compare(&baseline, &baseline, &GateConfig::default());
    assert!(missing_ids(&full).is_empty());
}

/// A frozen `BENCH_*.json` document (schema version 1). If this stops
/// parsing, committed baselines in the wild stop loading — treat any failure
/// here as a breaking schema change requiring a `SCHEMA_VERSION` bump and a
/// migration path.
const SNAPSHOT: &str = r#"{
  "schema_version": 1,
  "manifest": {
    "git_sha": "0123456789ab",
    "git_dirty": false,
    "profile": "perfbench-full",
    "cargo_profile": "release",
    "host_os": "linux",
    "host_arch": "x86_64",
    "hostname": "ci-runner",
    "threads": 8,
    "config_hash": "a1b2c3d4e5f60718",
    "timestamp_unix": 1754524800,
    "unknown_future_field": "ignored"
  },
  "results": [
    {
      "id": "tensor.matmul",
      "warmup": 5,
      "iters": 40,
      "median_ns": 250000,
      "mad_ns": 1200,
      "min_ns": 248000,
      "max_ns": 310000,
      "mean_ns": 252000,
      "ops_per_iter": 1,
      "throughput_unit": "matmuls",
      "ops_per_sec": 4000.0,
      "analytic_flops_per_iter": 524288,
      "measured_flops_per_sec": 2097152000.0,
      "efficiency_ratio": 1.0
    },
    {
      "id": "search.combo",
      "warmup": 1,
      "iters": 7,
      "median_ns": 1500000000,
      "mad_ns": 20000000,
      "min_ns": 1480000000,
      "max_ns": 1600000000,
      "mean_ns": 1510000000,
      "ops_per_iter": 1,
      "throughput_unit": "combos",
      "ops_per_sec": 0.6666,
      "analytic_flops_per_iter": null,
      "measured_flops_per_sec": null,
      "efficiency_ratio": null
    }
  ]
}"#;

#[test]
fn schema_snapshot_stays_parseable() {
    let report: BenchReport = serde_json::from_str(SNAPSHOT).expect("snapshot parses");
    assert_eq!(report.schema_version, SCHEMA_VERSION);
    assert_eq!(report.manifest.git_sha, "0123456789ab");
    assert_eq!(report.manifest.threads, 8);
    // Snapshot predates the manifest's `fuse` and `alloc` fields; absent
    // parses as false.
    assert!(!report.manifest.fuse);
    assert!(!report.manifest.alloc);
    assert_eq!(report.results.len(), 2);

    // Snapshot also predates the per-result alloc columns.
    for result in &report.results {
        assert_eq!(result.allocs_per_iter, None);
        assert_eq!(result.alloc_bytes_per_iter, None);
        assert_eq!(result.peak_alloc_bytes, None);
    }

    let matmul = report.result(REFERENCE_BENCH).expect("matmul present");
    assert_eq!(matmul.median_ns, 250_000);
    assert_eq!(matmul.analytic_flops_per_iter, Some(524_288));
    assert_eq!(matmul.efficiency_ratio, Some(1.0));

    let combo = report.result("search.combo").expect("combo present");
    assert_eq!(combo.analytic_flops_per_iter, None);
    assert_eq!(combo.efficiency_ratio, None);

    // And the parsed report re-serialises to something that parses back to
    // the same value (field order is part of the schema contract).
    let round = serde_json::to_string_pretty(&report).unwrap();
    let back: BenchReport = serde_json::from_str(&round).unwrap();
    assert_eq!(report, back);
}

#[test]
fn emitted_reports_match_the_snapshot_field_set() {
    // The emitter must produce exactly the documented fields, so freshly
    // written BENCH files can be diffed against committed baselines.
    let report = report(vec![result("a", 1_000, 10)]);
    let json = serde_json::to_string_pretty(&report).unwrap();
    for key in [
        "\"schema_version\"",
        "\"manifest\"",
        "\"git_sha\"",
        "\"config_hash\"",
        "\"results\"",
        "\"median_ns\"",
        "\"mad_ns\"",
        "\"ops_per_sec\"",
        "\"analytic_flops_per_iter\"",
        "\"measured_flops_per_sec\"",
        "\"efficiency_ratio\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
}
