//! The regression gate: noise-aware comparison of a benchmark run against a
//! committed baseline.
//!
//! A fixed percentage threshold either cries wolf on noisy benchmarks or
//! sleeps through real regressions on stable ones. The gate therefore takes
//! the larger of a relative floor and a multiple of the measured noise
//! (MAD) — a benchmark must be slower than the baseline by *more than its
//! own jitter* before it fails the build.

use crate::report::BenchReport;

/// Tunable thresholds of the regression gate.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GateConfig {
    /// Relative slowdown floor below which deltas are never flagged
    /// (`0.10` = 10 %).
    pub rel_threshold: f64,
    /// How many MADs (the larger of baseline's and current's, relative to
    /// the baseline median) of slack the noise term grants.
    pub mad_multiplier: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            rel_threshold: 0.10,
            mad_multiplier: 4.0,
        }
    }
}

/// What the gate concluded about one benchmark.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Faster than the baseline by more than the allowed band.
    Improvement,
    /// Slower than the baseline by more than the allowed band — fails the
    /// gate.
    Regression,
    /// Inside the noise band.
    WithinNoise,
    /// Present in this run but absent from the baseline (new benchmark).
    New,
    /// Present in the baseline but absent from this run (renamed, removed,
    /// or filtered out).
    Missing,
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Comparison {
    /// Benchmark id.
    pub id: String,
    /// Baseline median (ns); 0 for [`Verdict::New`].
    pub baseline_median_ns: u64,
    /// Current median (ns); 0 for [`Verdict::Missing`].
    pub current_median_ns: u64,
    /// Relative change `(current − baseline) / baseline` (0 when either
    /// side is absent).
    pub delta: f64,
    /// The allowed band the delta was judged against.
    pub allowed: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Compares `current` against `baseline`, one [`Comparison`] per benchmark
/// id seen on either side (baseline order first, then new ids in run order).
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    config: &GateConfig,
) -> Vec<Comparison> {
    let mut out = Vec::new();
    for base in &baseline.results {
        let Some(cur) = current.result(&base.id) else {
            out.push(Comparison {
                id: base.id.clone(),
                baseline_median_ns: base.median_ns,
                current_median_ns: 0,
                delta: 0.0,
                allowed: 0.0,
                verdict: Verdict::Missing,
            });
            continue;
        };
        let base_median = (base.median_ns.max(1)) as f64;
        let delta = (cur.median_ns as f64 - base_median) / base_median;
        let noise = config.mad_multiplier * base.mad_ns.max(cur.mad_ns) as f64 / base_median;
        let allowed = config.rel_threshold.max(noise);
        let verdict = if delta > allowed {
            Verdict::Regression
        } else if delta < -allowed {
            Verdict::Improvement
        } else {
            Verdict::WithinNoise
        };
        out.push(Comparison {
            id: base.id.clone(),
            baseline_median_ns: base.median_ns,
            current_median_ns: cur.median_ns,
            delta,
            allowed,
            verdict,
        });
    }
    for cur in &current.results {
        if baseline.result(&cur.id).is_none() {
            out.push(Comparison {
                id: cur.id.clone(),
                baseline_median_ns: 0,
                current_median_ns: cur.median_ns,
                delta: 0.0,
                allowed: 0.0,
                verdict: Verdict::New,
            });
        }
    }
    out
}

/// Whether any comparison fails the gate.
pub fn has_regressions(comparisons: &[Comparison]) -> bool {
    comparisons.iter().any(|c| c.verdict == Verdict::Regression)
}

/// Ids of baseline benchmarks absent from the current run
/// ([`Verdict::Missing`]), in baseline order.
///
/// A missing benchmark has `delta = 0` and would otherwise sail through the
/// gate — but a rename or deletion silently dropping baseline coverage is a
/// gate failure in its own right, so `--check` treats a non-empty result as
/// failing unless `--allow-missing` is passed.
pub fn missing_ids(comparisons: &[Comparison]) -> Vec<&str> {
    comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Missing)
        .map(|c| c.id.as_str())
        .collect()
}

/// Renders the comparison table for stdout.
pub fn render(comparisons: &[Comparison]) -> String {
    let mut out = format!(
        "{:<26} {:>14} {:>14} {:>9} {:>9}  verdict\n",
        "benchmark", "baseline", "current", "delta", "allowed"
    );
    for c in comparisons {
        let (delta, allowed) = match c.verdict {
            Verdict::New | Verdict::Missing => ("-".to_string(), "-".to_string()),
            _ => (
                format!("{:+.1}%", c.delta * 100.0),
                format!("±{:.1}%", c.allowed * 100.0),
            ),
        };
        out.push_str(&format!(
            "{:<26} {:>14} {:>14} {:>9} {:>9}  {}\n",
            c.id,
            if c.baseline_median_ns == 0 {
                "-".to_string()
            } else {
                format!("{}ns", c.baseline_median_ns)
            },
            if c.current_median_ns == 0 {
                "-".to_string()
            } else {
                format!("{}ns", c.current_median_ns)
            },
            delta,
            allowed,
            match c.verdict {
                Verdict::Improvement => "improvement",
                Verdict::Regression => "REGRESSION",
                Verdict::WithinNoise => "within noise",
                Verdict::New => "new (no baseline)",
                Verdict::Missing => "missing from run",
            }
        ));
    }
    out
}
