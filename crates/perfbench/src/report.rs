//! Benchmark reports: the machine-readable `BENCH_<stamp>.json` schema,
//! derived throughput/efficiency metrics, and the human-readable table.

use crate::stats::Summary;
use crate::suite::REFERENCE_BENCH;
use hqnn_telemetry::RunManifest;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Version of the `BENCH_*.json` schema; bump on breaking layout changes.
pub const SCHEMA_VERSION: u64 = 1;

/// One benchmark's measured outcome plus its derived metrics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchResult {
    /// Stable benchmark id (the baseline matching key).
    pub id: String,
    /// Untimed warmup iterations that preceded measurement.
    pub warmup: u64,
    /// Timed iterations.
    pub iters: u64,
    /// Median per-iteration wall time.
    pub median_ns: u64,
    /// Median absolute deviation of the iteration times.
    pub mad_ns: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
    /// Mean iteration time (reference only; gating uses the median).
    pub mean_ns: u64,
    /// Work units per iteration.
    pub ops_per_iter: u64,
    /// What one work unit is (`gate-applies`, `train-steps`, …).
    pub throughput_unit: String,
    /// Derived throughput: `ops_per_iter / median` per second.
    pub ops_per_sec: f64,
    /// Analytic FLOPs per iteration from `hqnn-flops` (simulation
    /// convention), for workloads the cost model covers.
    pub analytic_flops_per_iter: Option<u64>,
    /// Derived: `analytic_flops_per_iter / median` per second — how many
    /// modelled FLOPs this machine retires per wall-clock second.
    pub measured_flops_per_sec: Option<f64>,
    /// `measured_flops_per_sec` relative to the `tensor.matmul` reference
    /// bench (matmul ≡ 1.0) — how efficiently this workload turns time into
    /// modelled arithmetic compared to a dense kernel.
    pub efficiency_ratio: Option<f64>,
    /// Allocations per timed iteration (present only when the run was made
    /// with `HQNN_ALLOC=1`; `default` keeps pre-alloc baselines loadable).
    #[serde(default)]
    pub allocs_per_iter: Option<u64>,
    /// Bytes allocated per timed iteration (same condition).
    #[serde(default)]
    pub alloc_bytes_per_iter: Option<u64>,
    /// Peak live bytes above entry level across the whole timed loop.
    #[serde(default)]
    pub peak_alloc_bytes: Option<u64>,
}

impl BenchResult {
    /// Builds a result from a timing summary and the benchmark's metadata.
    /// `efficiency_ratio` stays `None` until
    /// [`BenchReport::compute_efficiency`] sees the whole suite.
    pub fn from_summary(
        id: &str,
        warmup: u64,
        summary: Summary,
        ops_per_iter: u64,
        throughput_unit: &str,
        analytic_flops_per_iter: Option<u64>,
    ) -> Self {
        let median_s = (summary.median_ns as f64 / 1e9).max(1e-12);
        Self {
            id: id.to_string(),
            warmup,
            iters: summary.iters,
            median_ns: summary.median_ns,
            mad_ns: summary.mad_ns,
            min_ns: summary.min_ns,
            max_ns: summary.max_ns,
            mean_ns: summary.mean_ns,
            ops_per_iter,
            throughput_unit: throughput_unit.to_string(),
            ops_per_sec: ops_per_iter as f64 / median_s,
            analytic_flops_per_iter,
            measured_flops_per_sec: analytic_flops_per_iter.map(|f| f as f64 / median_s),
            efficiency_ratio: None,
            allocs_per_iter: None,
            alloc_bytes_per_iter: None,
            peak_alloc_bytes: None,
        }
    }

    /// Attaches the allocation delta measured around the timed loop,
    /// amortised per iteration. A `None` delta (counting disabled) leaves
    /// the result untouched.
    pub fn with_alloc(
        mut self,
        delta: Option<hqnn_telemetry::alloc::AllocDelta>,
        iters: u64,
    ) -> Self {
        if let Some(delta) = delta {
            let iters = iters.max(1);
            self.allocs_per_iter = Some(delta.count / iters);
            self.alloc_bytes_per_iter = Some(delta.bytes / iters);
            self.peak_alloc_bytes = Some(delta.peak_bytes);
        }
        self
    }
}

/// A full benchmark run: provenance manifest + per-benchmark results.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version of this document.
    pub schema_version: u64,
    /// Provenance of the run (git SHA, build profile, host, threads, …).
    pub manifest: RunManifest,
    /// Results in suite order.
    pub results: Vec<BenchResult>,
}

impl BenchReport {
    /// Assembles a report and fills in the efficiency ratios.
    pub fn new(manifest: RunManifest, results: Vec<BenchResult>) -> Self {
        let mut report = Self {
            schema_version: SCHEMA_VERSION,
            manifest,
            results,
        };
        report.compute_efficiency();
        report
    }

    /// Normalises every result's measured FLOPs/sec by the reference
    /// bench's (`tensor.matmul` ≡ 1.0). No-op for results without analytic
    /// FLOPs, or when the reference was filtered out of the run.
    pub fn compute_efficiency(&mut self) {
        let reference = self
            .results
            .iter()
            .find(|r| r.id == REFERENCE_BENCH)
            .and_then(|r| r.measured_flops_per_sec);
        let Some(reference) = reference else { return };
        if reference <= 0.0 {
            return;
        }
        for result in &mut self.results {
            result.efficiency_ratio = result.measured_flops_per_sec.map(|f| f / reference);
        }
    }

    /// Looks up a result by benchmark id.
    pub fn result(&self, id: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.id == id)
    }

    /// Writes the report as pretty-printed JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, json + "\n")
    }

    /// Loads a report written by [`BenchReport::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// The `BENCH_<stamp>.json` file name for this report's capture time.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", stamp(self.manifest.timestamp_unix))
    }

    /// Renders the human-readable result table (stdout companion of the
    /// JSON artifact).
    pub fn human_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "benchmarks @ {} ({}, {} threads, {})\n",
            self.manifest.git_sha,
            self.manifest.cargo_profile,
            self.manifest.threads,
            self.manifest.profile,
        ));
        // Alloc columns only when the run carried alloc data (HQNN_ALLOC=1).
        let has_alloc = self.results.iter().any(|r| r.allocs_per_iter.is_some());
        out.push_str(&format!(
            "{:<26} {:>12} {:>10} {:>26} {:>12} {:>11}",
            "benchmark", "median", "mad", "throughput", "mflops/s", "efficiency"
        ));
        if has_alloc {
            out.push_str(&format!(
                " {:>10} {:>12} {:>10}",
                "allocs/it", "alloc-b/it", "peak-b"
            ));
        }
        out.push('\n');
        for r in &self.results {
            out.push_str(&format!(
                "{:<26} {:>12} {:>10} {:>26} {:>12} {:>11}",
                r.id,
                fmt_ns(r.median_ns),
                fmt_ns(r.mad_ns),
                format!("{}/s {}", fmt_count(r.ops_per_sec), r.throughput_unit),
                r.measured_flops_per_sec
                    .map(|f| format!("{:.1}", f / 1e6))
                    .unwrap_or_else(|| "-".to_string()),
                r.efficiency_ratio
                    .map(|e| format!("{e:.3}"))
                    .unwrap_or_else(|| "-".to_string()),
            ));
            if has_alloc {
                let opt =
                    |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string());
                out.push_str(&format!(
                    " {:>10} {:>12} {:>10}",
                    opt(r.allocs_per_iter),
                    opt(r.alloc_bytes_per_iter),
                    opt(r.peak_alloc_bytes),
                ));
            }
            out.push('\n');
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// `YYYYMMDD-HHMMSS` (UTC) for a Unix timestamp — the `BENCH_<stamp>` part
/// of emitted file names. Civil-date conversion after Howard Hinnant's
/// `civil_from_days` algorithm.
pub fn stamp(unix_secs: u64) -> String {
    let days = unix_secs / 86_400;
    let secs_of_day = unix_secs % 86_400;
    let (y, m, d) = civil_from_days(days as i64);
    format!(
        "{y:04}{m:02}{d:02}-{:02}{:02}{:02}",
        secs_of_day / 3600,
        (secs_of_day % 3600) / 60,
        secs_of_day % 60
    )
}

fn civil_from_days(z: i64) -> (i64, u64, u64) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &str, median_ns: u64, flops: Option<u64>) -> BenchResult {
        BenchResult::from_summary(
            id,
            2,
            Summary {
                iters: 10,
                median_ns,
                mad_ns: median_ns / 100,
                min_ns: median_ns - 5,
                max_ns: median_ns + 5,
                mean_ns: median_ns,
            },
            4,
            "ops",
            flops,
        )
    }

    #[test]
    fn throughput_and_flops_derive_from_median() {
        let r = result("x", 2_000_000, Some(8_000_000)); // 2 ms/iter
        assert!((r.ops_per_sec - 2000.0).abs() < 1e-6); // 4 ops / 2 ms
        assert!((r.measured_flops_per_sec.unwrap() - 4e9).abs() < 1.0);
        let none = result("y", 2_000_000, None);
        assert_eq!(none.measured_flops_per_sec, None);
    }

    #[test]
    fn efficiency_is_relative_to_matmul() {
        let mut report = BenchReport::new(
            RunManifest::capture("test"),
            vec![
                result(REFERENCE_BENCH, 1_000, Some(10_000)), // 1e13 F/s
                result("half", 1_000, Some(5_000)),           // 5e12 F/s
                result("unmodelled", 1_000, None),
            ],
        );
        report.compute_efficiency();
        let eff = |id: &str| report.result(id).unwrap().efficiency_ratio;
        assert!((eff(REFERENCE_BENCH).unwrap() - 1.0).abs() < 1e-12);
        assert!((eff("half").unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(eff("unmodelled"), None);
    }

    #[test]
    fn stamps_render_utc_dates() {
        assert_eq!(stamp(0), "19700101-000000");
        // 2026-08-06 00:00:00 UTC.
        assert_eq!(stamp(1_785_974_400), "20260806-000000");
        // Leap-year boundary: 2024-02-29 23:59:59.
        assert_eq!(stamp(1_709_251_199), "20240229-235959");
    }

    #[test]
    fn report_round_trips_through_files() {
        let report = BenchReport::new(
            RunManifest::capture("test"),
            vec![result("a", 500, Some(1000))],
        );
        let path =
            std::env::temp_dir().join(format!("hqnn-perfbench-test-{}.json", std::process::id()));
        report.save(&path).unwrap();
        let back = BenchReport::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report, back);
        assert!(back.file_name().starts_with("BENCH_"));
        assert!(back.file_name().ends_with(".json"));
    }
}
