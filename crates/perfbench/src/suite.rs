//! The benchmark suite: deterministic workloads over the workspace's hot
//! paths, each paired with its `hqnn-flops` analytic cost where one exists.
//!
//! Workloads are **identical** at every scale — `--smoke` only reduces the
//! warmup/iteration counts — so a smoke run's per-iteration medians are
//! directly comparable against a full-scale baseline (noisier, but the same
//! quantity).

use crate::report::BenchResult;
use crate::stats;
use hqnn_core::{ClassicalSpec, HybridSpec};
use hqnn_flops::CostModel;
use hqnn_nn::{one_hot, Adam, SoftmaxCrossEntropy};
use hqnn_qsim::{
    adjoint, parameter_shift, with_batch_layout, with_fusion, with_fusion_level, BatchLayout,
    EntanglerKind, GateKind, Observable, QnnTemplate, StateVector,
};
use hqnn_search::protocol::{evaluate_combo, evaluate_combo_wave, prepare_level_data};
use hqnn_search::SearchConfig;
use hqnn_telemetry as telemetry;
use hqnn_tensor::{Matrix, SeededRng};
use std::hint::black_box;
use std::time::Instant;

/// How many warmup and timed iterations each benchmark runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Untimed warmup iterations for light benchmarks.
    pub light_warmup: u32,
    /// Timed iterations for light benchmarks.
    pub light_iters: u32,
    /// Untimed warmup iterations for heavy (seconds-per-iteration) benchmarks.
    pub heavy_warmup: u32,
    /// Timed iterations for heavy benchmarks.
    pub heavy_iters: u32,
}

impl Scale {
    /// The default scale: enough timed iterations for a stable median.
    pub fn full() -> Self {
        Self {
            light_warmup: 5,
            light_iters: 40,
            heavy_warmup: 1,
            heavy_iters: 7,
        }
    }

    /// CI scale: same workloads, minimum iteration counts (seconds total).
    pub fn smoke() -> Self {
        Self {
            light_warmup: 2,
            light_iters: 8,
            heavy_warmup: 1,
            heavy_iters: 3,
        }
    }
}

/// One benchmark: a named, repeatable workload plus its reporting metadata.
pub struct Benchmark {
    /// Stable identifier (`qsim.adjoint_grad`), the key baselines match on.
    pub id: &'static str,
    /// What one unit of throughput means (`gate-applies`, `train-steps`, …).
    pub throughput_unit: &'static str,
    /// Units of work performed per timed iteration.
    pub ops_per_iter: u64,
    /// Analytic FLOPs per iteration from `hqnn-flops` under the simulation
    /// cost convention, when the workload has a modelled cost.
    pub analytic_flops_per_iter: Option<u64>,
    /// Heavy benchmarks (≳1 s/iteration) get the reduced iteration plan.
    pub heavy: bool,
    run: Box<dyn FnMut()>,
}

impl Benchmark {
    /// Runs warmup + timed iterations and summarises into a [`BenchResult`]
    /// (without an efficiency ratio — that needs the whole suite; see
    /// [`crate::report::BenchReport::compute_efficiency`]).
    pub fn run(&mut self, scale: Scale) -> BenchResult {
        let _span = telemetry::span("perfbench.bench");
        let (warmup, iters) = if self.heavy {
            (scale.heavy_warmup, scale.heavy_iters)
        } else {
            (scale.light_warmup, scale.light_iters)
        };
        for _ in 0..warmup {
            (self.run)();
        }
        let mut samples = Vec::with_capacity(iters as usize);
        // With HQNN_ALLOC=1 the timed loop runs inside an allocation
        // window, adding alloc columns to the report; counting never
        // perturbs the workload itself (see hqnn-alloc), and `samples` is
        // preallocated so the loop's own bookkeeping stays out of the
        // numbers.
        let (_, alloc) = telemetry::alloc::measure(|| {
            for _ in 0..iters {
                let start = Instant::now();
                (self.run)();
                samples.push(start.elapsed().as_nanos() as u64);
            }
        });
        let summary = stats::summarize(&samples);
        telemetry::event(
            telemetry::Level::Info,
            "perfbench.result",
            &[
                ("id", self.id.into()),
                ("median_ns", summary.median_ns.into()),
                ("mad_ns", summary.mad_ns.into()),
                ("iters", summary.iters.into()),
            ],
        );
        BenchResult::from_summary(
            self.id,
            warmup as u64,
            summary,
            self.ops_per_iter,
            self.throughput_unit,
            self.analytic_flops_per_iter,
        )
        .with_alloc(alloc, iters as u64)
    }
}

/// The id of the benchmark every efficiency ratio is normalised against.
pub const REFERENCE_BENCH: &str = "tensor.matmul";

/// Builds the default suite covering the workspace's hot paths. Every
/// workload is seeded, so run-to-run variation is timing noise only.
pub fn default_suite() -> Vec<Benchmark> {
    let cost = CostModel::simulation();
    let mut suite = Vec::new();

    // -- tensor.matmul: the reference point for efficiency ratios ---------
    // A dense 64×64×64 matmul is the closest this workspace gets to peak
    // arithmetic throughput; every other benchmark's measured FLOPs/sec is
    // reported relative to it.
    {
        const N: usize = 64;
        let mut rng = SeededRng::new(11);
        let a = Matrix::uniform(N, N, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(N, N, -1.0, 1.0, &mut rng);
        suite.push(Benchmark {
            id: REFERENCE_BENCH,
            throughput_unit: "matmuls",
            ops_per_iter: 1,
            analytic_flops_per_iter: Some(2 * (N * N * N) as u64),
            heavy: false,
            run: Box::new(move || {
                black_box(black_box(&a).matmul(black_box(&b)));
            }),
        });
    }

    // -- qsim.gate_apply: raw single-qubit gate application ---------------
    {
        const QUBITS: usize = 10;
        const APPLIES: u64 = 64;
        let gate = GateKind::RY.matrix(0.3);
        let mut state = StateVector::new(QUBITS);
        suite.push(Benchmark {
            id: "qsim.gate_apply",
            throughput_unit: "gate-applies",
            ops_per_iter: APPLIES,
            analytic_flops_per_iter: Some(APPLIES * cost.single_qubit_gate(QUBITS)),
            heavy: false,
            run: Box::new(move || {
                for i in 0..APPLIES {
                    state.apply_single(black_box(&gate), (i as usize) % QUBITS);
                }
                black_box(&state);
            }),
        });
    }

    // -- qsim.statevector_evolve: full circuit forward pass ---------------
    {
        let template = QnnTemplate::new(6, 4, EntanglerKind::Strong);
        let circuit = template.build();
        let inputs: Vec<f64> = (0..circuit.input_count())
            .map(|i| 0.1 + i as f64 * 0.2)
            .collect();
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let flops = cost
            .circuit_forward(&circuit.op_census(), circuit.n_qubits())
            .total();
        suite.push(Benchmark {
            id: "qsim.statevector_evolve",
            throughput_unit: "circuit-runs",
            ops_per_iter: 1,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                black_box(circuit.run(black_box(&inputs), black_box(&params)));
            }),
        });
    }

    // -- qsim.statevector_evolve_fused: same circuit, fused gate runs -----
    // The opt-in `HQNN_FUSE` path over the identical workload: encoding RX +
    // Rot runs collapse into one matrix apply per wire per layer. Has its
    // own baseline entry because fused output is rounding-equal (not
    // bitwise) to the scalar path.
    {
        let template = QnnTemplate::new(6, 4, EntanglerKind::Strong);
        let circuit = template.build();
        let inputs: Vec<f64> = (0..circuit.input_count())
            .map(|i| 0.1 + i as f64 * 0.2)
            .collect();
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let flops = cost
            .circuit_forward(&circuit.op_census(), circuit.n_qubits())
            .total();
        suite.push(Benchmark {
            id: "qsim.statevector_evolve_fused",
            throughput_unit: "circuit-runs",
            ops_per_iter: 1,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                with_fusion(true, || {
                    black_box(circuit.run(black_box(&inputs), black_box(&params)));
                });
            }),
        });
    }

    // -- qsim.run_batch: batched forward pass through the runtime ---------
    // The batch seam the thread-scaling gate watches: one iteration evolves
    // a whole batch of rows through the same circuit via `run_batch`, which
    // fans rows out across `HQNN_THREADS`. Compare against a threads=1 run
    // of the same bench to measure scaling.
    {
        const BATCH: usize = 16;
        let template = QnnTemplate::new(6, 4, EntanglerKind::Strong);
        let circuit = template.build();
        let mut rng = SeededRng::new(31);
        let inputs = Matrix::uniform(BATCH, circuit.input_count(), -1.0, 1.0, &mut rng);
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.53).sin())
            .collect();
        let flops = BATCH as u64
            * cost
                .circuit_forward(&circuit.op_census(), circuit.n_qubits())
                .total();
        suite.push(Benchmark {
            id: "qsim.run_batch",
            throughput_unit: "circuit-runs",
            ops_per_iter: BATCH as u64,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                black_box(circuit.run_batch(black_box(&inputs), black_box(&params)));
            }),
        });
    }

    // -- qsim.run_batch_fused: the same batch through the fused path ------
    // One shared `FusePlan` serves every row (it is a pure function of the
    // circuit), so this measures fusion's win on the batch seam itself.
    {
        const BATCH: usize = 16;
        let template = QnnTemplate::new(6, 4, EntanglerKind::Strong);
        let circuit = template.build();
        let mut rng = SeededRng::new(31);
        let inputs = Matrix::uniform(BATCH, circuit.input_count(), -1.0, 1.0, &mut rng);
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.53).sin())
            .collect();
        let flops = BATCH as u64
            * cost
                .circuit_forward(&circuit.op_census(), circuit.n_qubits())
                .total();
        suite.push(Benchmark {
            id: "qsim.run_batch_fused",
            throughput_unit: "circuit-runs",
            ops_per_iter: BATCH as u64,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                with_fusion(true, || {
                    black_box(circuit.run_batch(black_box(&inputs), black_box(&params)));
                });
            }),
        });
    }

    // -- qsim.run_batch_rowmajor: the pre-refactor batch layout -----------
    // The same workload as `qsim.run_batch`, pinned to the row-major layout
    // (`HQNN_BATCH=row`): each row resolves every gate matrix itself. The
    // gate-major default hoists shared matrices once per chunk, so the
    // ratio `qsim.run_batch` / `qsim.run_batch_rowmajor` is the layout win.
    {
        const BATCH: usize = 16;
        let template = QnnTemplate::new(6, 4, EntanglerKind::Strong);
        let circuit = template.build();
        let mut rng = SeededRng::new(31);
        let inputs = Matrix::uniform(BATCH, circuit.input_count(), -1.0, 1.0, &mut rng);
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.53).sin())
            .collect();
        let flops = BATCH as u64
            * cost
                .circuit_forward(&circuit.op_census(), circuit.n_qubits())
                .total();
        suite.push(Benchmark {
            id: "qsim.run_batch_rowmajor",
            throughput_unit: "circuit-runs",
            ops_per_iter: BATCH as u64,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                with_batch_layout(BatchLayout::Row, || {
                    black_box(circuit.run_batch(black_box(&inputs), black_box(&params)));
                });
            }),
        });
    }

    // -- qsim.run_batch_fused2q: pair fusion on the batch seam ------------
    // `HQNN_FUSE=2` over the `qsim.run_batch_fused` workload: CNOT-adjacent
    // single-qubit runs additionally collapse into 4×4 pair applies. The
    // ratio against `qsim.run_batch_fused` is the two-qubit-fusion win.
    {
        const BATCH: usize = 16;
        let template = QnnTemplate::new(6, 4, EntanglerKind::Strong);
        let circuit = template.build();
        let mut rng = SeededRng::new(31);
        let inputs = Matrix::uniform(BATCH, circuit.input_count(), -1.0, 1.0, &mut rng);
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.53).sin())
            .collect();
        let flops = BATCH as u64
            * cost
                .circuit_forward(&circuit.op_census(), circuit.n_qubits())
                .total();
        suite.push(Benchmark {
            id: "qsim.run_batch_fused2q",
            throughput_unit: "circuit-runs",
            ops_per_iter: BATCH as u64,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                with_fusion_level(2, || {
                    black_box(circuit.run_batch(black_box(&inputs), black_box(&params)));
                });
            }),
        });
    }

    // -- qsim.batch_sweep: the gate-major sweep engine under load ---------
    // The sweep engine's showcase configuration — a larger batch than
    // `qsim.run_batch` (several chunks' worth) at fusion level 2, where the
    // per-row matrix-resolution cost the gate layout hoists (fused matmul
    // chains and 4×4 pair matrices, trig and all) is at its highest. Named
    // for the `qsim.batch_sweep` span each chunk opens. Its `_rowmajor`
    // twin below runs the identical workload row-major; the pair's ratio is
    // the layout win the refactor is gated on.
    {
        const BATCH: usize = 64;
        let template = QnnTemplate::new(6, 4, EntanglerKind::Strong);
        let circuit = template.build();
        let mut rng = SeededRng::new(31);
        let inputs = Matrix::uniform(BATCH, circuit.input_count(), -1.0, 1.0, &mut rng);
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.53).sin())
            .collect();
        let flops = BATCH as u64
            * cost
                .circuit_forward(&circuit.op_census(), circuit.n_qubits())
                .total();
        suite.push(Benchmark {
            id: "qsim.batch_sweep",
            throughput_unit: "circuit-runs",
            ops_per_iter: BATCH as u64,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                with_fusion_level(2, || {
                    with_batch_layout(BatchLayout::Gate, || {
                        black_box(circuit.run_batch(black_box(&inputs), black_box(&params)));
                    });
                });
            }),
        });
    }

    // -- qsim.batch_sweep_rowmajor: the same sweep workload, row-major ----
    // Identical workload to `qsim.batch_sweep` under `HQNN_BATCH=row`: each
    // row rebuilds every fused chain and pair matrix itself. This is the
    // row-major baseline the gate-major sweep is measured against.
    {
        const BATCH: usize = 64;
        let template = QnnTemplate::new(6, 4, EntanglerKind::Strong);
        let circuit = template.build();
        let mut rng = SeededRng::new(31);
        let inputs = Matrix::uniform(BATCH, circuit.input_count(), -1.0, 1.0, &mut rng);
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.53).sin())
            .collect();
        let flops = BATCH as u64
            * cost
                .circuit_forward(&circuit.op_census(), circuit.n_qubits())
                .total();
        suite.push(Benchmark {
            id: "qsim.batch_sweep_rowmajor",
            throughput_unit: "circuit-runs",
            ops_per_iter: BATCH as u64,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                with_fusion_level(2, || {
                    with_batch_layout(BatchLayout::Row, || {
                        black_box(circuit.run_batch(black_box(&inputs), black_box(&params)));
                    });
                });
            }),
        });
    }

    // -- qsim.adjoint_grad: the gradient engine hybrid training uses ------
    {
        let template = QnnTemplate::new(4, 3, EntanglerKind::Strong);
        let circuit = template.build();
        let inputs: Vec<f64> = (0..circuit.input_count())
            .map(|i| 0.2 + i as f64 * 0.15)
            .collect();
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.61).cos())
            .collect();
        let observables: Vec<Observable> = (0..4).map(Observable::z).collect();
        let flops = cost.circuit_total(&circuit, observables.len()).total();
        suite.push(Benchmark {
            id: "qsim.adjoint_grad",
            throughput_unit: "grad-evals",
            ops_per_iter: 1,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                black_box(adjoint(black_box(&circuit), &inputs, &params, &observables));
            }),
        });
    }

    // -- qsim.param_shift_grad: the 2-evals-per-parameter alternative -----
    {
        let template = QnnTemplate::new(3, 2, EntanglerKind::Strong);
        let circuit = template.build();
        let inputs: Vec<f64> = (0..circuit.input_count())
            .map(|i| 0.3 + i as f64 * 0.25)
            .collect();
        let params: Vec<f64> = (0..circuit.trainable_count())
            .map(|i| (i as f64 * 0.43).sin())
            .collect();
        let observables: Vec<Observable> = (0..3).map(Observable::z).collect();
        let census = circuit.op_census();
        let n = circuit.n_qubits();
        let fwd = cost.circuit_forward(&census, n).total();
        let flops = fwd
            + cost.circuit_backward_parameter_shift(&census, n, observables.len())
            + cost.circuit_readout(n, observables.len());
        suite.push(Benchmark {
            id: "qsim.param_shift_grad",
            throughput_unit: "grad-evals",
            ops_per_iter: 1,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                black_box(parameter_shift(
                    black_box(&circuit),
                    &inputs,
                    &params,
                    &observables,
                ));
            }),
        });
    }

    // -- nn.train_step_classical: one forward/backward/update -------------
    {
        const BATCH: usize = 8;
        let spec = ClassicalSpec::new(8, vec![16], 3);
        let mut rng = SeededRng::new(23);
        let mut model = spec.build(&mut rng);
        let mut optimizer = Adam::new(0.005);
        let loss_fn = SoftmaxCrossEntropy;
        let xb = Matrix::uniform(BATCH, 8, -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..BATCH).map(|i| i % 3).collect();
        let targets = one_hot(&labels, 3);
        let flops = BATCH as u64 * cost.mlp(8, &[16], 3);
        suite.push(Benchmark {
            id: "nn.train_step_classical",
            throughput_unit: "train-steps",
            ops_per_iter: 1,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                let logits = model.forward(black_box(&xb), true);
                let (loss, grad) = loss_fn.loss_and_grad(&logits, &targets);
                black_box(loss);
                model.backward(&grad);
                model.apply_gradients(&mut optimizer);
            }),
        });
    }

    // -- nn.train_step_hybrid: the same step through a quantum layer ------
    {
        const BATCH: usize = 4;
        let spec = HybridSpec::new(6, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong));
        let mut rng = SeededRng::new(29);
        let mut model = spec.build(&mut rng);
        let mut optimizer = Adam::new(0.005);
        let loss_fn = SoftmaxCrossEntropy;
        let xb = Matrix::uniform(BATCH, 6, -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..BATCH).map(|i| i % 3).collect();
        let targets = one_hot(&labels, 3);
        let flops = BATCH as u64 * spec.flops(&cost).total();
        suite.push(Benchmark {
            id: "nn.train_step_hybrid",
            throughput_unit: "train-steps",
            ops_per_iter: 1,
            analytic_flops_per_iter: Some(flops),
            heavy: false,
            run: Box::new(move || {
                let logits = model.forward(black_box(&xb), true);
                let (loss, grad) = loss_fn.loss_and_grad(&logits, &targets);
                black_box(loss);
                model.backward(&grad);
                model.apply_gradients(&mut optimizer);
            }),
        });
    }

    // -- search.combo: one full protocol combination evaluation -----------
    // The end-to-end unit the experiment runtime is made of: generate data,
    // train a candidate to completion, aggregate accuracies. No analytic
    // FLOPs — accuracy evaluation and data prep are outside the cost model.
    {
        let mut config = SearchConfig::smoke();
        config.dataset_samples = 90;
        config.train = config.train.with_epochs(4);
        let data = prepare_level_data(&config, 4);
        let spec = hqnn_core::ModelSpec::from(ClassicalSpec::new(4, vec![8], 3));
        let cost_model = cost;
        suite.push(Benchmark {
            id: "search.combo",
            throughput_unit: "combos",
            ops_per_iter: 1,
            analytic_flops_per_iter: None,
            heavy: true,
            run: Box::new(move || {
                black_box(evaluate_combo(
                    black_box(&spec),
                    &data,
                    &config,
                    &cost_model,
                    17,
                ));
            }),
        });
    }

    // -- search.combo_parallel: one speculative wave of combo trainings ---
    // The exact unit `search_level` speculates on: a wave of candidate
    // specs trained concurrently through `evaluate_combo_wave`. At
    // threads=1 this degenerates to sequential `search.combo` × wave size;
    // the ratio between the two thread settings is the search-layer scaling
    // number the CI smoke gate asserts on.
    {
        let mut config = SearchConfig::smoke();
        config.dataset_samples = 90;
        config.train = config.train.with_epochs(4);
        let data = prepare_level_data(&config, 4);
        let specs: Vec<hqnn_core::ModelSpec> = [vec![4], vec![8], vec![16], vec![8, 8]]
            .into_iter()
            .map(|hidden| hqnn_core::ModelSpec::from(ClassicalSpec::new(4, hidden, 3)))
            .collect();
        let salts: Vec<u64> = (0..specs.len() as u64).map(|i| 17 + i).collect();
        let cost_model = cost;
        let wave = specs.len() as u64;
        suite.push(Benchmark {
            id: "search.combo_parallel",
            throughput_unit: "combos",
            ops_per_iter: wave,
            analytic_flops_per_iter: None,
            heavy: true,
            run: Box::new(move || {
                let refs: Vec<&hqnn_core::ModelSpec> = specs.iter().collect();
                black_box(evaluate_combo_wave(
                    black_box(&refs),
                    &data,
                    &config,
                    &cost_model,
                    &salts,
                ));
            }),
        });
    }

    // -- search.study_seq / search.study_sharded: the whole-study seam ----
    // A miniature two-family study (the smallest shape with more than one
    // (family × level) cell), run once through the sequential per-family
    // loops and once through `run_study_sharded`. Both are bitwise
    // identical by construction; their wall-clock ratio is the study-level
    // sharding win the CI smoke gate reads out (≈1.0 at one thread, where
    // the outer fan-out degenerates to the same sequential order).
    {
        let study_config = || {
            let mut config = hqnn_search::ExperimentConfig::smoke();
            config.levels = vec![4];
            config.search.dataset_samples = 90;
            config.search.train = config.search.train.with_epochs(4);
            config.search.max_combos_per_repetition = 2;
            config
        };
        const FAMILIES: [hqnn_search::Family; 2] = [
            hqnn_search::Family::Classical,
            hqnn_search::Family::HybridBel,
        ];
        let config_seq = study_config();
        suite.push(Benchmark {
            id: "search.study_seq",
            throughput_unit: "studies",
            ops_per_iter: 1,
            analytic_flops_per_iter: None,
            heavy: true,
            run: Box::new(move || {
                let mut study = hqnn_search::StudyResult::new(config_seq.clone());
                for family in FAMILIES {
                    study.run_family(family, &mut |_, _, _| {});
                }
                black_box(study);
            }),
        });
        let config_sharded = study_config();
        suite.push(Benchmark {
            id: "search.study_sharded",
            throughput_unit: "studies",
            ops_per_iter: 1,
            analytic_flops_per_iter: None,
            heavy: true,
            run: Box::new(move || {
                let mut study = hqnn_search::StudyResult::new(config_sharded.clone());
                black_box(study.run_study_sharded(&FAMILIES, &mut |_, _, _, _| {}));
                black_box(study);
            }),
        });
    }

    // -- telemetry.counter_hot / counter_hot_mutex: metric hot path -------
    // Four workers hammering one counter name — the contention shape of
    // `qsim.gate_applies` under the parallel runtime. The sharded path
    // (production `counter()`) takes an uncontended per-thread lock; the
    // `_mutex` twin routes the identical workload through the legacy
    // global-mutex path, so the pair *is* the sharding win, measured.
    {
        const WORKERS: u64 = 4;
        const INCS_PER_WORKER: u64 = 50_000;
        suite.push(Benchmark {
            id: "telemetry.counter_hot",
            throughput_unit: "counter-incs",
            ops_per_iter: WORKERS * INCS_PER_WORKER,
            analytic_flops_per_iter: None,
            heavy: false,
            run: Box::new(move || {
                hqnn_runtime::with_threads(WORKERS as usize, || {
                    hqnn_runtime::par_map_range(WORKERS as usize, |_| {
                        for _ in 0..INCS_PER_WORKER {
                            telemetry::counter("perfbench.hot_ticks", 1);
                        }
                    })
                });
            }),
        });
        suite.push(Benchmark {
            id: "telemetry.counter_hot_mutex",
            throughput_unit: "counter-incs",
            ops_per_iter: WORKERS * INCS_PER_WORKER,
            analytic_flops_per_iter: None,
            heavy: false,
            run: Box::new(move || {
                hqnn_runtime::with_threads(WORKERS as usize, || {
                    hqnn_runtime::par_map_range(WORKERS as usize, |_| {
                        for _ in 0..INCS_PER_WORKER {
                            telemetry::counter_unsharded("perfbench.hot_mutex_ticks", 1);
                        }
                    })
                });
            }),
        });
    }

    suite
}

/// Runs every benchmark whose id contains `filter` (all when `None`),
/// returning results in suite order.
pub fn run_suite(scale: Scale, filter: Option<&str>) -> Vec<BenchResult> {
    let _span = telemetry::span("perfbench.suite");
    let mut results = Vec::new();
    for mut bench in default_suite() {
        if let Some(f) = filter {
            if !bench.id.contains(f) {
                continue;
            }
        }
        telemetry::event(
            telemetry::Level::Info,
            "perfbench.start",
            &[("id", bench.id.into())],
        );
        results.push(bench.run(scale));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_ids_are_unique_and_reference_exists() {
        let suite = default_suite();
        let ids: Vec<&str> = suite.iter().map(|b| b.id).collect();
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), ids.len(), "duplicate bench ids");
        assert!(ids.contains(&REFERENCE_BENCH));
        assert!(suite.len() >= 10);
    }

    #[test]
    fn filter_selects_by_substring() {
        let results = run_suite(Scale::smoke(), Some("tensor.matmul"));
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.id, "tensor.matmul");
        assert_eq!(r.iters, 8);
        assert!(r.median_ns > 0);
        assert!(r.ops_per_sec > 0.0);
        assert_eq!(r.analytic_flops_per_iter, Some(2 * 64 * 64 * 64));
        assert!(r.measured_flops_per_sec.unwrap() > 0.0);
    }
}
