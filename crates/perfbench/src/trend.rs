//! Perf trajectories over the committed `bench/history/` series.
//!
//! Each PR appends the `BENCH_<stamp>.json` it measured to `bench/history/`
//! (see `make bench`), so the repo carries its own performance record.
//! `perfbench --trend` folds that series into a per-benchmark trajectory:
//! the latest median, the delta against the previous entry, and a
//! median ± MAD band over the whole series that flags drift a single
//! noisy entry would hide.

use crate::report::{stamp, BenchReport};
use crate::stats;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One benchmark's datapoint in one history entry.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendPoint {
    /// `YYYYMMDD-HHMMSS` capture stamp of the entry.
    pub stamp: String,
    /// Git SHA the entry was measured at.
    pub git_sha: String,
    /// Median wall time per iteration in that entry.
    pub median_ns: u64,
    /// Median absolute deviation in that entry.
    pub mad_ns: u64,
}

/// One benchmark's trajectory across the whole history series.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchTrend {
    /// Benchmark id (`crate.workload` convention, as in `BenchResult`).
    pub id: String,
    /// Chronological datapoints (entries that include this benchmark).
    pub points: Vec<TrendPoint>,
    /// Median of the series' medians.
    pub series_median_ns: u64,
    /// MAD of the series' medians (0 for a single entry).
    pub series_mad_ns: u64,
    /// Latest median relative to the previous entry, in percent
    /// (positive = slower). `None` with fewer than two datapoints.
    pub delta_vs_prev_pct: Option<f64>,
    /// True when the latest median sits outside the series' noise band
    /// (`series_median ± max(10%, 4×MAD)` — the regression gate's band
    /// applied across history instead of against one baseline).
    pub drifted: bool,
}

impl BenchTrend {
    fn from_points(id: String, points: Vec<TrendPoint>) -> Self {
        let medians: Vec<u64> = points.iter().map(|p| p.median_ns).collect();
        let summary = stats::summarize(&medians);
        // lint:allow(panic): trends() only builds a BenchTrend after pushing at least one point
        let latest = *medians.last().expect("points are non-empty");
        let delta_vs_prev_pct = (medians.len() >= 2).then(|| {
            let prev = medians[medians.len() - 2].max(1) as f64;
            (latest as f64 - prev) / prev * 100.0
        });
        let band = (summary.median_ns as f64 * 0.10).max(4.0 * summary.mad_ns as f64);
        let drifted = (latest as f64 - summary.median_ns as f64).abs() > band;
        Self {
            id,
            points,
            series_median_ns: summary.median_ns,
            series_mad_ns: summary.mad_ns,
            delta_vs_prev_pct,
            drifted,
        }
    }
}

/// Loads every `BENCH_*.json` under `dir`, sorted by file name — the
/// `BENCH_<stamp>` convention makes lexicographic order chronological.
/// Unreadable or schema-incompatible files fail loudly rather than being
/// silently skipped: a corrupt history entry is a repo bug.
pub fn load_history(dir: impl AsRef<Path>) -> io::Result<Vec<BenchReport>> {
    let mut names: Vec<String> = std::fs::read_dir(dir.as_ref())?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().to_string_lossy().into_owned();
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
        })
        .collect();
    names.sort();
    names
        .iter()
        .map(|name| BenchReport::load(dir.as_ref().join(name)))
        .collect()
}

/// Folds a chronological report series into per-benchmark trajectories,
/// ordered by benchmark id.
pub fn trends(history: &[BenchReport]) -> Vec<BenchTrend> {
    let mut by_id: BTreeMap<String, Vec<TrendPoint>> = BTreeMap::new();
    for report in history {
        let stamp = stamp(report.manifest.timestamp_unix);
        for result in &report.results {
            by_id
                .entry(result.id.clone())
                .or_default()
                .push(TrendPoint {
                    stamp: stamp.clone(),
                    git_sha: report.manifest.git_sha.clone(),
                    median_ns: result.median_ns,
                    mad_ns: result.mad_ns,
                });
        }
    }
    by_id
        .into_iter()
        .map(|(id, points)| BenchTrend::from_points(id, points))
        .collect()
}

/// Renders the trajectory table. One row per benchmark: series length,
/// first/previous/latest medians, delta vs previous, series median ± MAD,
/// and a `drift` marker when the latest entry left the noise band.
pub fn render(trends: &[BenchTrend]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>4} {:>12} {:>12} {:>12} {:>9} {:>12} {:>10}  {}\n",
        "benchmark", "n", "first", "prev", "latest", "Δprev", "series-med", "mad", "flags"
    ));
    for t in trends {
        // lint:allow(panic): a BenchTrend always carries at least one point
        let first = t.points.first().expect("non-empty");
        // lint:allow(panic): a BenchTrend always carries at least one point
        let latest = t.points.last().expect("non-empty");
        let prev = (t.points.len() >= 2).then(|| t.points[t.points.len() - 2].median_ns);
        out.push_str(&format!(
            "{:<28} {:>4} {:>12} {:>12} {:>12} {:>9} {:>12} {:>10}  {}\n",
            t.id,
            t.points.len(),
            fmt_ns(first.median_ns),
            prev.map(fmt_ns).unwrap_or_else(|| "-".to_string()),
            fmt_ns(latest.median_ns),
            t.delta_vs_prev_pct
                .map(|d| format!("{d:+.1}%"))
                .unwrap_or_else(|| "-".to_string()),
            fmt_ns(t.series_median_ns),
            fmt_ns(t.series_mad_ns),
            if t.drifted { "drift" } else { "" },
        ));
    }
    if !trends.is_empty() {
        let entries = trends.iter().map(|t| t.points.len()).max().unwrap_or(0);
        let first_stamp = trends
            .iter()
            .filter_map(|t| t.points.first())
            .map(|p| p.stamp.as_str())
            .min()
            .unwrap_or("-");
        let last_stamp = trends
            .iter()
            .filter_map(|t| t.points.last())
            .map(|p| p.stamp.as_str())
            .max()
            .unwrap_or("-");
        out.push_str(&format!(
            "\n{entries} history entries, {first_stamp} → {last_stamp}\n"
        ));
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::BenchResult;
    use crate::stats::Summary;
    use hqnn_telemetry::RunManifest;

    fn report(timestamp: u64, medians: &[(&str, u64)]) -> BenchReport {
        let mut manifest = RunManifest::capture("trend-test");
        manifest.timestamp_unix = timestamp;
        let results = medians
            .iter()
            .map(|&(id, median_ns)| {
                BenchResult::from_summary(
                    id,
                    1,
                    Summary {
                        iters: 5,
                        median_ns,
                        mad_ns: median_ns / 50,
                        min_ns: median_ns,
                        max_ns: median_ns,
                        mean_ns: median_ns,
                    },
                    1,
                    "ops",
                    None,
                )
            })
            .collect();
        BenchReport::new(manifest, results)
    }

    #[test]
    fn trends_track_series_and_deltas() {
        let history = vec![
            report(1_000, &[("a.x", 100_000), ("a.y", 900)]),
            report(2_000, &[("a.x", 110_000), ("a.y", 900)]),
            report(3_000, &[("a.x", 220_000), ("a.y", 900)]),
        ];
        let trends = trends(&history);
        assert_eq!(trends.len(), 2);
        let ax = &trends[0];
        assert_eq!(ax.id, "a.x");
        assert_eq!(ax.points.len(), 3);
        assert_eq!(ax.series_median_ns, 110_000);
        let delta = ax.delta_vs_prev_pct.unwrap();
        assert!((delta - 100.0).abs() < 1e-9, "{delta}");
        assert!(ax.drifted, "2× jump must leave the noise band");
        let ay = &trends[1];
        assert_eq!(ay.delta_vs_prev_pct, Some(0.0));
        assert!(!ay.drifted);
    }

    #[test]
    fn single_entry_series_is_reported_without_delta() {
        let trends = trends(&[report(1_000, &[("solo.bench", 5_000)])]);
        assert_eq!(trends.len(), 1);
        assert_eq!(trends[0].delta_vs_prev_pct, None);
        assert!(!trends[0].drifted);
        let rendered = render(&trends);
        assert!(rendered.contains("solo.bench"), "{rendered}");
        assert!(rendered.contains("5.0µs"), "{rendered}");
    }

    #[test]
    fn benches_missing_from_some_entries_still_fold() {
        let history = vec![
            report(1_000, &[("old.bench", 10), ("kept.bench", 20)]),
            report(2_000, &[("kept.bench", 21), ("new.bench", 30)]),
        ];
        let trends = trends(&history);
        let by_id: Vec<&str> = trends.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(by_id, ["kept.bench", "new.bench", "old.bench"]);
        assert_eq!(trends[0].points.len(), 2);
        assert_eq!(trends[1].points.len(), 1);
    }

    #[test]
    fn history_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("hqnn-trend-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let early = report(86_400, &[("a.x", 100)]);
        let late = report(2 * 86_400, &[("a.x", 120)]);
        // Written out of order; the stamped names must restore chronology.
        late.save(dir.join(late.file_name())).unwrap();
        early.save(dir.join(early.file_name())).unwrap();
        std::fs::write(dir.join("README.md"), "not a report").unwrap();

        let history = load_history(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(history.len(), 2, "non-BENCH files are ignored");
        assert_eq!(history[0].manifest.timestamp_unix, 86_400);
        let trends = trends(&history);
        assert_eq!(trends[0].delta_vs_prev_pct, Some(20.0));
    }
}
