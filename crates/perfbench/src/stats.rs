//! Robust summary statistics for benchmark timings.
//!
//! Medians and the median absolute deviation (MAD) instead of mean/stddev:
//! wall-clock samples on a shared machine are contaminated by one-sided
//! outliers (scheduler preemption, page faults), which shift a mean badly
//! but leave the median almost untouched. The MAD doubles as the noise
//! scale the regression gate uses for its adaptive threshold.

/// Robust summary of one benchmark's timed iterations (all in nanoseconds).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Number of timed iterations.
    pub iters: u64,
    /// Median iteration time.
    pub median_ns: u64,
    /// Median absolute deviation from the median.
    pub mad_ns: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
    /// Arithmetic mean (reported for reference; the gate ignores it).
    pub mean_ns: u64,
}

/// Summarises a non-empty set of per-iteration timings.
///
/// # Panics
///
/// Panics if `samples_ns` is empty.
pub fn summarize(samples_ns: &[u64]) -> Summary {
    assert!(!samples_ns.is_empty(), "cannot summarise zero samples");
    let median = median_u64(samples_ns);
    let deviations: Vec<u64> = samples_ns.iter().map(|&s| s.abs_diff(median)).collect();
    Summary {
        iters: samples_ns.len() as u64,
        median_ns: median,
        mad_ns: median_u64(&deviations),
        // lint:allow(panic): non-empty asserted at function entry
        min_ns: *samples_ns.iter().min().unwrap(),
        // lint:allow(panic): non-empty asserted at function entry
        max_ns: *samples_ns.iter().max().unwrap(),
        mean_ns: (samples_ns.iter().map(|&s| s as u128).sum::<u128>() / samples_ns.len() as u128)
            as u64,
    }
}

/// Median of a slice (average of the middle two for even counts).
fn median_u64(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_count_median_is_exact() {
        let s = summarize(&[5, 1, 9, 3, 7]);
        assert_eq!(s.median_ns, 5);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 9);
        assert_eq!(s.mean_ns, 5);
        assert_eq!(s.iters, 5);
        // Deviations from 5: [0, 4, 4, 2, 2] → median 2.
        assert_eq!(s.mad_ns, 2);
    }

    #[test]
    fn even_count_median_averages_middle_pair() {
        let s = summarize(&[10, 20, 30, 40]);
        assert_eq!(s.median_ns, 25);
        // Deviations: [15, 5, 5, 15] → (5 + 15) / 2.
        assert_eq!(s.mad_ns, 10);
    }

    #[test]
    fn outliers_barely_move_the_median() {
        let mut samples = vec![100u64; 99];
        samples.push(1_000_000); // one preempted iteration
        let s = summarize(&samples);
        assert_eq!(s.median_ns, 100);
        assert_eq!(s.mad_ns, 0);
        assert!(s.mean_ns > 10_000, "the mean is ruined, as expected");
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_input_panics() {
        summarize(&[]);
    }
}
