//! Deterministic microbenchmarks for the hqnn workspace, with provenance
//! manifests, derived throughput/efficiency metrics, and a noise-aware
//! baseline regression gate.
//!
//! The paper this repo reproduces argues about *computational cost*, so the
//! workspace needs trustworthy numbers for what its own hot paths cost on
//! real hardware — and a tripwire for when a change makes them worse:
//!
//! - [`suite`]: seeded, repeatable workloads over the hot paths (tensor
//!   matmul, gate application, statevector evolution, adjoint and
//!   parameter-shift gradients, classical/hybrid train steps, one full
//!   search-combo evaluation). Workloads are identical at every scale;
//!   `--smoke` only trims iteration counts, so medians stay comparable.
//! - [`stats`]: median/MAD summaries — robust to the one-sided scheduler
//!   outliers that wreck means.
//! - [`report`]: the `BENCH_<stamp>.json` schema. Each result pairs its
//!   measured wall time with the `hqnn-flops` analytic cost of the same
//!   workload, yielding measured FLOPs/sec and an efficiency ratio relative
//!   to the dense-matmul reference.
//! - [`gate`]: compares a run against `bench/baseline.json`, flagging only
//!   deltas that exceed both a relative floor and a multiple of the
//!   measured noise (MAD).
//!
//! The `perfbench` binary ties it together: `make bench` writes a stamped
//! JSON report, `make bench-check` exits non-zero on regression, and
//! `--trace-out` additionally captures a Chrome-trace timeline of the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod report;
pub mod stats;
pub mod suite;
pub mod trend;

pub use gate::{compare, has_regressions, missing_ids, Comparison, GateConfig, Verdict};
pub use report::{BenchReport, BenchResult, SCHEMA_VERSION};
pub use stats::{summarize, Summary};
pub use suite::{default_suite, run_suite, Benchmark, Scale, REFERENCE_BENCH};
pub use trend::{load_history, trends, BenchTrend, TrendPoint};
