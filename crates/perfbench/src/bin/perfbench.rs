//! The `perfbench` binary: runs the microbenchmark suite, emits a stamped
//! `BENCH_<stamp>.json` with a run manifest, and optionally gates against a
//! committed baseline.
//!
//! ```text
//! perfbench                          # full scale, writes bench/BENCH_<stamp>.json
//! perfbench --smoke                  # CI scale (same workloads, fewer iters)
//! perfbench --check                  # also compare against bench/baseline.json,
//!                                    # exit 1 on regression
//! perfbench --check --advisory       # report regressions but exit 0
//! perfbench --update-baseline        # rewrite bench/baseline.json from this run
//! perfbench --filter qsim            # only benchmarks whose id contains "qsim"
//! perfbench --trace-out trace.json   # Chrome trace + .folded flamegraph input
//! perfbench --trend                  # no benches: report trajectories over the
//!                                    # committed bench/history/ series
//! ```

use hqnn_perfbench::{
    compare, gate, has_regressions, missing_ids, run_suite, trend, BenchReport, Scale,
};
use hqnn_telemetry as telemetry;
use std::path::PathBuf;
use std::process::exit;

const DEFAULT_OUT_DIR: &str = "bench";
const DEFAULT_BASELINE: &str = "bench/baseline.json";
const DEFAULT_HISTORY_DIR: &str = "bench/history";

struct Args {
    smoke: bool,
    filter: Option<String>,
    out_dir: PathBuf,
    check: Option<PathBuf>,
    advisory: bool,
    allow_missing: bool,
    update_baseline: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    log_json: Option<PathBuf>,
    quiet: bool,
    trend: Option<PathBuf>,
    trend_out: Option<PathBuf>,
}

fn usage() -> ! {
    println!(
        "usage: perfbench [--smoke] [--filter SUBSTR] [--out DIR] [--check [BASELINE]]\n\
         \x20                [--advisory] [--update-baseline [PATH]] [--trace-out PATH]\n\
         \x20                [--log-json PATH] [--quiet]\n\
         \n\
         --smoke             CI scale: same workloads, fewer warmup/timed iterations\n\
         --filter SUBSTR     only run benchmarks whose id contains SUBSTR\n\
         --out DIR           directory for BENCH_<stamp>.json (default bench/)\n\
         --check [BASELINE]  compare against a baseline (default bench/baseline.json)\n\
         \x20                    and exit 1 when any benchmark regresses\n\
         --advisory          with --check: report regressions but always exit 0\n\
         --allow-missing     with --check: tolerate baseline benchmarks absent from\n\
         \x20                    this run (renamed/removed/filtered); fails otherwise\n\
         --update-baseline   rewrite the baseline (default bench/baseline.json) from this run\n\
         --trace-out PATH    write a Chrome trace JSON (+ PATH.folded flamegraph input)\n\
         --log-json PATH     mirror telemetry events to a JSONL file\n\
         --quiet             suppress stderr progress (tables still print)\n\
         --trend [DIR]       run no benchmarks; render per-benchmark trajectories\n\
         \x20                    from the BENCH_*.json series in DIR (default bench/history)\n\
         --trend-out PATH    with --trend: also write the trajectory report to PATH"
    );
    exit(0);
}

/// Parses a flag's optional path operand: consumed only when the next
/// argument exists and is not itself a flag.
fn optional_path(args: &[String], i: &mut usize, default: &str) -> PathBuf {
    if let Some(next) = args.get(*i + 1) {
        if !next.starts_with('-') {
            *i += 1;
            return PathBuf::from(next);
        }
    }
    PathBuf::from(default)
}

fn required_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            eprintln!("{flag} requires an argument");
            exit(2);
        }
    }
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        smoke: false,
        filter: None,
        out_dir: PathBuf::from(DEFAULT_OUT_DIR),
        check: None,
        advisory: false,
        allow_missing: false,
        update_baseline: None,
        trace_out: None,
        log_json: None,
        quiet: false,
        trend: None,
        trend_out: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--filter" => args.filter = Some(required_value(&argv, &mut i, "--filter")),
            "--out" => args.out_dir = PathBuf::from(required_value(&argv, &mut i, "--out")),
            "--check" => args.check = Some(optional_path(&argv, &mut i, DEFAULT_BASELINE)),
            "--advisory" => args.advisory = true,
            "--allow-missing" => args.allow_missing = true,
            "--update-baseline" => {
                args.update_baseline = Some(optional_path(&argv, &mut i, DEFAULT_BASELINE))
            }
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(required_value(&argv, &mut i, "--trace-out")))
            }
            "--log-json" => {
                args.log_json = Some(PathBuf::from(required_value(&argv, &mut i, "--log-json")))
            }
            "--trend" => args.trend = Some(optional_path(&argv, &mut i, DEFAULT_HISTORY_DIR)),
            "--trend-out" => {
                args.trend_out = Some(PathBuf::from(required_value(&argv, &mut i, "--trend-out")))
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}; try --help");
                exit(2);
            }
        }
        i += 1;
    }
    args
}

/// `--trend` mode: fold the committed history series into a trajectory
/// report, print it (and optionally write it), run no benchmarks.
fn run_trend(dir: &PathBuf, out: Option<&PathBuf>) -> ! {
    // A missing or empty history directory is the normal state of a fresh
    // clone (or a CI cache miss), not an error: report it and exit cleanly.
    let history = match trend::load_history(dir) {
        Ok(history) => history,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("could not read history dir {}: {e}", dir.display());
            exit(2);
        }
    };
    if history.is_empty() {
        println!(
            "no history yet: no BENCH_*.json entries in {}; run `make bench` to append one",
            dir.display()
        );
        if let Some(path) = out {
            if let Err(e) = std::fs::write(path, "no history yet\n") {
                eprintln!("could not write trend report {}: {e}", path.display());
                exit(1);
            }
        }
        exit(0);
    }
    let trends = trend::trends(&history);
    let rendered = trend::render(&trends);
    print!("{rendered}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("could not write trend report {}: {e}", path.display());
            exit(1);
        }
        println!("trend report written: {}", path.display());
    }
    exit(0);
}

fn main() {
    let args = parse();

    if let Some(dir) = &args.trend {
        run_trend(dir, args.trend_out.as_ref());
    }

    if args.quiet {
        telemetry::set_level(telemetry::Level::Off);
    } else if !telemetry::env::is_set("HQNN_LOG") {
        telemetry::set_level(telemetry::Level::Info);
    }
    if let Some(path) = &args.log_json {
        if let Err(e) = telemetry::add_jsonl_sink(path) {
            eprintln!("could not open --log-json file {}: {e}", path.display());
            exit(2);
        }
    }
    if args.trace_out.is_some() {
        telemetry::trace::enable();
    }

    let scale = if args.smoke {
        Scale::smoke()
    } else {
        Scale::full()
    };
    let profile = if args.smoke {
        "perfbench-smoke"
    } else {
        "perfbench-full"
    };
    let manifest = telemetry::RunManifest::capture(profile)
        .with_config_hash(&(profile, args.filter.as_deref().unwrap_or("")));
    telemetry::event(telemetry::Level::Info, "run.manifest", &manifest.fields());

    let results = run_suite(scale, args.filter.as_deref());
    if results.is_empty() {
        eprintln!(
            "no benchmark matches filter {:?}",
            args.filter.as_deref().unwrap_or("")
        );
        exit(2);
    }
    let report = BenchReport::new(manifest, results);

    print!("{}", report.human_table());

    let out_path = args.out_dir.join(report.file_name());
    match report.save(&out_path) {
        Ok(()) => telemetry::event(
            telemetry::Level::Info,
            "perfbench.report_written",
            &[("path", out_path.display().to_string().into())],
        ),
        Err(e) => {
            eprintln!("could not write {}: {e}", out_path.display());
            exit(1);
        }
    }

    if let Some(path) = &args.update_baseline {
        if let Err(e) = report.save(path) {
            eprintln!("could not write baseline {}: {e}", path.display());
            exit(1);
        }
        println!("baseline updated: {}", path.display());
    }

    let mut failed = false;
    if let Some(baseline_path) = &args.check {
        match BenchReport::load(baseline_path) {
            Ok(baseline) => {
                if baseline.manifest.hostname != report.manifest.hostname
                    || baseline.manifest.cargo_profile != report.manifest.cargo_profile
                {
                    eprintln!(
                        "note: baseline from {}/{} vs current {}/{} — thresholds may not transfer",
                        baseline.manifest.hostname,
                        baseline.manifest.cargo_profile,
                        report.manifest.hostname,
                        report.manifest.cargo_profile,
                    );
                }
                let comparisons = compare(&baseline, &report, &gate::GateConfig::default());
                println!("\nregression gate vs {}:", baseline_path.display());
                print!("{}", gate::render(&comparisons));
                let missing = missing_ids(&comparisons);
                if !missing.is_empty() {
                    println!(
                        "baseline benchmarks missing from this run: {}",
                        missing.join(", ")
                    );
                    if args.allow_missing {
                        println!("missing benchmarks tolerated (--allow-missing)");
                    } else if args.advisory {
                        println!("missing benchmarks detected (advisory mode: not failing)");
                    } else {
                        println!(
                            "missing benchmarks drop baseline coverage; pass --allow-missing to tolerate"
                        );
                        failed = true;
                    }
                }
                if has_regressions(&comparisons) {
                    if args.advisory {
                        println!("regressions detected (advisory mode: not failing)");
                    } else {
                        println!("regressions detected");
                        failed = true;
                    }
                } else if !failed {
                    println!("gate passed");
                }
            }
            Err(e) => {
                eprintln!("could not load baseline {}: {e}", baseline_path.display());
                if !args.advisory {
                    failed = true;
                }
            }
        }
    }

    telemetry::flush();
    if let Some(path) = &args.trace_out {
        if let Err(e) = std::fs::write(path, telemetry::trace::chrome_trace_json()) {
            eprintln!("could not write trace {}: {e}", path.display());
        }
        let folded = path.with_extension("folded");
        if let Err(e) = std::fs::write(&folded, telemetry::trace::collapsed_stacks()) {
            eprintln!("could not write {}: {e}", folded.display());
        }
    }
    if telemetry::enabled(telemetry::Level::Error) {
        eprintln!("{}", telemetry::report());
    }
    if failed {
        exit(1);
    }
}
