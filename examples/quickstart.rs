//! Quickstart: train a hybrid quantum–classical classifier on the spiral
//! dataset and report the paper's two complexity metrics.
//!
//! ```sh
//! cargo run -p hqnn-core --release --example quickstart
//! ```

use hqnn_core::prelude::*;

fn main() {
    // 1. Generate the paper's synthetic workload at a low complexity level
    //    (10 features) — reduced sample count so this runs in seconds.
    let mut rng = SeededRng::new(42);
    let dataset = Dataset::spiral(&SpiralConfig::fast(10), &mut rng);
    let (train_set, val_set) = dataset.split(0.8, &mut rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());
    println!(
        "dataset: {} train / {} val samples, {} features, noise σ = {:.3}",
        train_set.len(),
        val_set.len(),
        dataset.n_features(),
        noise_level(dataset.n_features()),
    );

    // 2. Describe a hybrid model: Dense(10→3) → SEL(3 qubits, 2 layers) → Dense(3→3).
    let spec = HybridSpec::new(10, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong));
    let cost = CostModel::default();
    let flops = spec.flops(&cost);
    println!("model:   {}", spec.label());
    println!(
        "cost:    {} params | {} FLOPs/sample (CL {} + Enc {} + QL {})",
        spec.param_count(),
        flops.total(),
        flops.classical,
        flops.encoding,
        flops.quantum,
    );

    // 3. Train with the paper's optimizer settings (Adam, lr = 0.001 — here
    //    with fewer epochs than the paper's 100 to stay snappy).
    let mut model = spec.build(&mut rng);
    let mut optimizer = Adam::new(0.01);
    let config = TrainConfig::fast().with_epochs(30);
    let report = train(
        &mut model,
        &mut optimizer,
        &x_train,
        train_set.labels(),
        &x_val,
        val_set.labels(),
        3,
        &config,
        &mut rng,
    );

    println!(
        "trained: best train acc {:.1}% | best val acc {:.1}% ({} epochs)",
        100.0 * report.best_train_accuracy,
        100.0 * report.best_val_accuracy,
        report.epochs_run,
    );
}
