//! Quantifying the paper's "more expressive quantum layer" claim (§III-C):
//! expressibility (KL divergence to the Haar fidelity distribution — lower
//! is better) and entangling capability (mean Meyer–Wallach Q) for BEL vs
//! SEL across widths and depths.
//!
//! ```sh
//! cargo run -p hqnn-core --release --example expressibility
//! ```

use hqnn_core::prelude::*;
use hqnn_qsim::metrics::{entangling_capability, expressibility};

fn main() {
    let pairs = 4000;
    let bins = 20;
    let q_samples = 200;

    println!("expressibility: KL(circuit fidelities ‖ Haar), lower = more expressive");
    println!("entanglement:   mean Meyer–Wallach Q over random parameters");
    println!();
    println!(
        "{:>8} {:>6} | {:>12} {:>12} | {:>10} {:>10}",
        "qubits", "depth", "KL (BEL)", "KL (SEL)", "Q (BEL)", "Q (SEL)"
    );

    for qubits in [3usize, 4] {
        for depth in [1usize, 2, 4] {
            let bel = QnnTemplate::new(qubits, depth, EntanglerKind::Basic);
            let sel = QnnTemplate::new(qubits, depth, EntanglerKind::Strong);
            let mut rng = SeededRng::new(2025);
            let kl_bel = expressibility(&bel, pairs, bins, &mut rng);
            let kl_sel = expressibility(&sel, pairs, bins, &mut rng);
            let q_bel = entangling_capability(&bel, q_samples, &mut rng);
            let q_sel = entangling_capability(&sel, q_samples, &mut rng);
            println!(
                "{qubits:>8} {depth:>6} | {kl_bel:>12.4} {kl_sel:>12.4} | {q_bel:>10.3} {q_sel:>10.3}"
            );
        }
    }

    println!();
    println!(
        "reading: SEL's per-layer Rot(φ,θ,ω) gives it a lower KL (more Haar-like state\n\
         coverage) than BEL's single RX per layer at every shape — the quantitative\n\
         counterpart of the paper's claim that SEL \"remains largely unaffected by the\n\
         increasing complexity of the problem\" because it is expressive enough from the\n\
         start. Entangling capability is comparable (both use CNOT rings); the gap is in\n\
         expressibility, not entanglement."
    );
}
