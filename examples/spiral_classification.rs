//! Classical vs hybrid (BEL and SEL) head-to-head on one spiral instance —
//! a single-complexity-level slice of the paper's comparison.
//!
//! ```sh
//! cargo run -p hqnn-core --release --example spiral_classification
//! ```

use hqnn_core::prelude::*;

struct Contender {
    spec: ModelSpec,
    report: TrainReport,
}

fn main() {
    let n_features = 10;
    let mut rng = SeededRng::new(7);
    let dataset = Dataset::spiral(&SpiralConfig::fast(n_features), &mut rng);
    let (train_set, val_set) = dataset.split(0.8, &mut rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());
    let cost = CostModel::default();

    let specs: Vec<ModelSpec> = vec![
        ClassicalSpec::new(n_features, vec![8, 6], 3).into(),
        HybridSpec::new(n_features, 3, QnnTemplate::new(3, 2, EntanglerKind::Basic)).into(),
        HybridSpec::new(n_features, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong)).into(),
    ];

    println!(
        "spiral @ {n_features} features, noise σ = {:.3}",
        noise_level(n_features)
    );
    println!();
    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>12}",
        "model", "params", "FLOPs", "train acc", "val acc"
    );

    let mut results = Vec::new();
    for spec in specs {
        let mut run_rng = rng.split(results.len() as u64);
        let mut model = spec.build(&mut run_rng);
        let mut optimizer = Adam::new(0.01);
        let config = TrainConfig::fast().with_epochs(40);
        let report = train(
            &mut model,
            &mut optimizer,
            &x_train,
            train_set.labels(),
            &x_val,
            val_set.labels(),
            3,
            &config,
            &mut run_rng,
        );
        println!(
            "{:<18} {:>8} {:>10} {:>11.1}% {:>11.1}%",
            spec.label(),
            spec.param_count(),
            spec.flops(&cost).total(),
            100.0 * report.best_train_accuracy,
            100.0 * report.best_val_accuracy,
        );
        results.push(Contender { spec, report });
    }

    println!();
    let best = results
        .iter()
        .max_by(|a, b| {
            a.report
                .best_val_accuracy
                .total_cmp(&b.report.best_val_accuracy)
        })
        .expect("at least one contender");
    println!(
        "best validation accuracy: {} at {:.1}%",
        best.spec.label(),
        100.0 * best.report.best_val_accuracy
    );
}
