//! Compare the three differentiation engines on one variational circuit:
//! adjoint, parameter-shift, and central finite differences. All three must
//! agree; the interesting part is the cost gap (adjoint is linear in gate
//! count, parameter-shift re-simulates twice per parameter).
//!
//! ```sh
//! cargo run -p hqnn-core --release --example quantum_gradients
//! ```

use std::time::Instant;

use hqnn_core::prelude::*;
use hqnn_qsim::{adjoint, finite_diff, parameter_shift};

fn main() {
    let template = QnnTemplate::new(4, 6, EntanglerKind::Strong);
    let circuit = template.build();
    let mut rng = SeededRng::new(11);
    let inputs: Vec<f64> = (0..4).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let params: Vec<f64> = (0..template.param_count())
        .map(|_| rng.uniform(0.0, std::f64::consts::TAU))
        .collect();
    let observables: Vec<Observable> = (0..4).map(Observable::z).collect();

    println!(
        "circuit: {} — {} gates, {} trainable parameters, {} observables",
        template.label(),
        circuit.ops().len(),
        template.param_count(),
        observables.len()
    );

    let reps = 50;
    let t0 = Instant::now();
    let mut adj = None;
    for _ in 0..reps {
        adj = Some(adjoint(&circuit, &inputs, &params, &observables));
    }
    let adj_time = t0.elapsed() / reps;
    let adj = adj.expect("computed");

    let t0 = Instant::now();
    let mut shift = None;
    for _ in 0..reps {
        shift = Some(parameter_shift(&circuit, &inputs, &params, &observables));
    }
    let shift_time = t0.elapsed() / reps;
    let shift = shift.expect("computed");

    let fd = finite_diff(&circuit, &inputs, &params, &observables, 1e-5);

    let max_dev_shift = max_abs_dev(&adj.d_params, &shift.d_params);
    let max_dev_fd = max_abs_dev(&adj.d_params, &fd.d_params);
    println!();
    println!("max |adjoint − parameter-shift| over all gradients: {max_dev_shift:.2e}");
    println!("max |adjoint − finite-diff|     over all gradients: {max_dev_fd:.2e}");
    println!();
    println!("mean wall time per full gradient:");
    println!("  adjoint        : {adj_time:?}");
    println!(
        "  parameter-shift: {shift_time:?}  ({:.1}× adjoint)",
        shift_time.as_secs_f64() / adj_time.as_secs_f64()
    );

    // The analytic FLOPs model predicts the same ordering.
    let cost = CostModel::simulation();
    let census = circuit.op_census();
    let adj_flops = cost.circuit_backward_adjoint(&census, 4, 4).total();
    let shift_flops = cost.circuit_backward_parameter_shift(&census, 4, 4);
    println!();
    println!(
        "analytic backward FLOPs: adjoint {adj_flops}, parameter-shift {shift_flops} \
         ({:.1}× adjoint)",
        shift_flops as f64 / adj_flops as f64
    );
}

fn max_abs_dev(a: &Matrix, b: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}
