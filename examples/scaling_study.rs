//! Mini scaling study (a fast slice of the paper's Fig. 10): how FLOPs and
//! parameter counts of classical vs hybrid models grow as the problem's
//! feature count grows, using the paper's winning architectures.
//!
//! ```sh
//! cargo run -p hqnn-core --release --example scaling_study
//! ```

use hqnn_core::prelude::*;

fn main() {
    let cost = CostModel::default();
    let levels = [10usize, 40, 80, 110];

    // The paper's reported best combinations per complexity level (Table I
    // for the hybrids; a representative growing MLP for the classical side).
    let classical_hidden: [&[usize]; 4] = [&[6], &[8, 6], &[10, 8], &[10, 10, 8]];
    let bel_shapes = [(3, 2), (3, 2), (3, 4), (4, 4)];
    let sel_shapes = [(3, 2), (3, 2), (3, 2), (3, 2)];

    println!("FLOPs per sample (forward + backward) and trainable parameters");
    println!();
    println!(
        "{:>8} | {:>22} | {:>22} | {:>22}",
        "features", "classical", "hybrid BEL", "hybrid SEL"
    );
    println!(
        "{:>8} | {:>10} {:>11} | {:>10} {:>11} | {:>10} {:>11}",
        "", "FLOPs", "params", "FLOPs", "params", "FLOPs", "params"
    );

    let mut first: Option<(u64, u64, u64)> = None;
    let mut last = (0u64, 0u64, 0u64);
    for (i, &f) in levels.iter().enumerate() {
        let classical = ClassicalSpec::new(f, classical_hidden[i].to_vec(), 3);
        let (bq, bd) = bel_shapes[i];
        let bel = HybridSpec::new(f, 3, QnnTemplate::new(bq, bd, EntanglerKind::Basic));
        let (sq, sd) = sel_shapes[i];
        let sel = HybridSpec::new(f, 3, QnnTemplate::new(sq, sd, EntanglerKind::Strong));

        let cf = classical.flops(&cost).total();
        let bf = bel.flops(&cost).total();
        let sf = sel.flops(&cost).total();
        println!(
            "{:>8} | {:>10} {:>11} | {:>10} {:>11} | {:>10} {:>11}",
            f,
            cf,
            classical.param_count(),
            bf,
            bel.param_count(),
            sf,
            sel.param_count(),
        );
        if first.is_none() {
            first = Some((cf, bf, sf));
        }
        last = (cf, bf, sf);
    }

    let (c0, b0, s0) = first.expect("at least one level");
    let rate = |lo: u64, hi: u64| 100.0 * (hi as f64 - lo as f64) / lo as f64;
    println!();
    println!("rate of increase in FLOPs, 10 → 110 features:");
    println!("  classical : {:+.1}%", rate(c0, last.0));
    println!("  hybrid BEL: {:+.1}%", rate(b0, last.1));
    println!("  hybrid SEL: {:+.1}%", rate(s0, last.2));
    println!();
    println!(
        "(paper reports classical +88.5%, BEL +80.1%, SEL +53.1% — the ordering\n\
         SEL < BEL < classical is the reproduced shape)"
    );
}
