//! Stress-testing the paper's idealisation: how well does the SEL hybrid
//! hold up when its quantum layer runs under NISQ-style gate noise?
//!
//! The paper simulates ideal circuits and argues the observed advantage is
//! "inherent to the quantum nature of the algorithms"; this example trains
//! the same SEL(3,2) hybrid with a depolarizing gate-error channel of
//! increasing strength and reports the accuracy it can still reach.
//!
//! ```sh
//! cargo run -p hqnn-core --release --example noisy_training
//! ```

use hqnn_core::prelude::*;
use hqnn_nn::SoftmaxCrossEntropy;

fn main() {
    let n_features = 6;
    let mut rng = SeededRng::new(13);
    let dataset = Dataset::spiral(&SpiralConfig::fast(n_features).with_samples(240), &mut rng);
    let (train_set, val_set) = dataset.split(0.8, &mut rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());
    let template = QnnTemplate::new(3, 2, EntanglerKind::Strong);

    println!(
        "SEL(3,2) hybrid on a {n_features}-feature spiral ({} train / {} val samples)",
        train_set.len(),
        val_set.len()
    );
    println!();
    println!(
        "{:>22} {:>12} {:>12} {:>10}",
        "gate error (depol. p)", "train acc", "val acc", "epochs"
    );

    for p in [0.0, 0.01, 0.05, 0.1, 0.2] {
        let mut run_rng = rng.split((p * 1000.0) as u64);
        let mut model = Sequential::new();
        model.push(Dense::new(n_features, 3, &mut run_rng));
        model.push(NoisyQuantumLayer::new(
            template,
            NoiseModel::depolarizing(p),
            &mut run_rng,
        ));
        model.push(Dense::new(3, 3, &mut run_rng));

        // Density-matrix simulation + parameter-shift is ~100× the ideal
        // layer's cost, so train on a reduced budget.
        let mut opt = Adam::new(0.02);
        let loss_fn = SoftmaxCrossEntropy::new();
        let targets = one_hot(train_set.labels(), 3);
        let epochs = 20;
        let mut order: Vec<usize> = (0..x_train.rows()).collect();
        let mut best_train = 0.0f64;
        let mut best_val = 0.0f64;
        for _ in 0..epochs {
            run_rng.shuffle(&mut order);
            for chunk in order.chunks(16) {
                let xb = x_train.select_rows(chunk);
                let tb = targets.select_rows(chunk);
                let logits = model.forward(&xb, true);
                let (_, grad) = loss_fn.loss_and_grad(&logits, &tb);
                model.backward(&grad);
                model.apply_gradients(&mut opt);
            }
            best_train = best_train.max(accuracy(&model.predict(&x_train), train_set.labels()));
            best_val = best_val.max(accuracy(&model.predict(&x_val), val_set.labels()));
        }
        println!(
            "{:>22.2} {:>11.1}% {:>11.1}% {:>10}",
            p,
            100.0 * best_train,
            100.0 * best_val,
            epochs
        );
    }

    println!();
    println!(
        "expected shape: accuracy degrades gracefully with gate error — mild noise\n\
         (p ≤ 0.05) keeps the hybrid trainable, strong noise damps the quantum\n\
         layer's outputs toward zero and learning stalls."
    );
}
