//! Train a hybrid model once, save it to disk, and restore it elsewhere —
//! the train-in-the-harness / reuse-in-the-app workflow.
//!
//! ```sh
//! cargo run -p hqnn-core --release --example model_persistence
//! ```

use hqnn_core::persist::SavedModel;
use hqnn_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_features = 8;
    let mut rng = SeededRng::new(21);
    let dataset = Dataset::spiral(&SpiralConfig::fast(n_features).with_samples(450), &mut rng);
    let (train_set, val_set) = dataset.split(0.8, &mut rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());

    // Train.
    let spec: ModelSpec =
        HybridSpec::new(n_features, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong)).into();
    let mut model = spec.build(&mut rng);
    let mut optimizer = Adam::new(0.01);
    let config = TrainConfig::fast().with_epochs(40);
    let report = train(
        &mut model,
        &mut optimizer,
        &x_train,
        train_set.labels(),
        &x_val,
        val_set.labels(),
        3,
        &config,
        &mut rng,
    );
    let trained_val = accuracy(&model.predict(&x_val), val_set.labels());
    println!(
        "trained {}: best val acc {:.1}%, final val acc {:.1}%",
        spec.label(),
        100.0 * report.best_val_accuracy,
        100.0 * trained_val,
    );

    // Save → load → verify identical behaviour.
    let path = std::env::temp_dir().join("hqnn-example-model.json");
    let saved = SavedModel::capture(spec, &mut model);
    saved.save(&path)?;
    println!("saved to {path:?} ({} weights)", saved.weights.len());

    let mut restored = SavedModel::load(&path)?.restore()?;
    let restored_val = accuracy(&restored.predict(&x_val), val_set.labels());
    println!("restored model val acc {:.1}%", 100.0 * restored_val);
    assert_eq!(
        model.predict(&x_val),
        restored.predict(&x_val),
        "restored model must be bit-identical"
    );
    println!("restored predictions are bit-identical to the trained model ✓");
    std::fs::remove_file(&path)?;
    Ok(())
}
