//! End-to-end pipeline tests spanning every crate: dataset → standardise →
//! build model from spec → train → evaluate → price with the cost model.

use hqnn_core::prelude::*;

/// Generates, splits and standardises a small spiral instance.
fn prepared(n_features: usize, seed: u64) -> (Matrix, Vec<usize>, Matrix, Vec<usize>, SeededRng) {
    let mut rng = SeededRng::new(seed);
    let config = SpiralConfig::fast(n_features).with_samples(300);
    let dataset = Dataset::spiral(&config, &mut rng);
    let (train_set, val_set) = dataset.split(0.8, &mut rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());
    (
        x_train,
        train_set.labels().to_vec(),
        x_val,
        val_set.labels().to_vec(),
        rng,
    )
}

fn run(spec: &ModelSpec, epochs: usize, seed: u64) -> TrainReport {
    let (x_train, y_train, x_val, y_val, mut rng) = prepared(spec.n_features(), seed);
    let mut model = spec.build(&mut rng);
    let mut opt = Adam::new(0.01);
    let config = TrainConfig::fast().with_epochs(epochs);
    train(
        &mut model, &mut opt, &x_train, &y_train, &x_val, &y_val, 3, &config, &mut rng,
    )
}

#[test]
fn classical_model_learns_the_spiral() {
    let spec: ModelSpec = ClassicalSpec::new(4, vec![10, 8], 3).into();
    let report = run(&spec, 60, 1);
    assert!(
        report.best_train_accuracy > 0.8,
        "classical model underfits: {report:?}"
    );
    assert!(report.best_val_accuracy > 0.7, "{report:?}");
}

#[test]
fn hybrid_sel_model_learns_the_spiral() {
    let spec: ModelSpec =
        HybridSpec::new(4, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong)).into();
    let report = run(&spec, 60, 2);
    assert!(
        report.best_train_accuracy > 0.75,
        "SEL hybrid underfits: {report:?}"
    );
    assert!(report.best_val_accuracy > 0.65, "{report:?}");
}

#[test]
fn hybrid_bel_model_trains_without_diverging() {
    let spec: ModelSpec =
        HybridSpec::new(4, 3, QnnTemplate::new(3, 2, EntanglerKind::Basic)).into();
    let report = run(&spec, 40, 3);
    assert!(report.final_train_loss.is_finite());
    assert!(report.best_train_accuracy > 0.5, "{report:?}");
}

#[test]
fn training_improves_over_initialisation() {
    let spec: ModelSpec = ClassicalSpec::new(6, vec![8], 3).into();
    let (x_train, y_train, _x_val, _y_val, mut rng) = prepared(6, 4);
    let mut model = spec.build(&mut rng);
    let initial = accuracy(&model.predict(&x_train), &y_train);
    let mut opt = Adam::new(0.01);
    let config = TrainConfig::fast().with_epochs(30);
    let report = train(
        &mut model,
        &mut opt,
        &x_train,
        &y_train,
        &Matrix::zeros(0, 6),
        &[],
        3,
        &config,
        &mut rng,
    );
    assert!(
        report.best_train_accuracy > initial + 0.15,
        "no learning: {initial} → {}",
        report.best_train_accuracy
    );
}

#[test]
fn flops_pricing_is_consistent_with_built_models() {
    let cost = CostModel::default();
    let specs: Vec<ModelSpec> = vec![
        ClassicalSpec::new(20, vec![8, 4], 3).into(),
        HybridSpec::new(20, 3, QnnTemplate::new(4, 3, EntanglerKind::Basic)).into(),
        HybridSpec::new(20, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong)).into(),
    ];
    let mut rng = SeededRng::new(9);
    for spec in specs {
        let model = spec.build(&mut rng);
        assert_eq!(model.param_count(), spec.param_count(), "{}", spec.label());
        assert!(spec.flops(&cost).total() > 0);
    }
}

#[test]
fn quantum_layer_gradients_survive_full_pipeline() {
    // Train one step, then verify the loss actually decreases along the
    // negative gradient direction (a first-order sanity check through the
    // entire hybrid stack).
    let (x_train, y_train, _xv, _yv, mut rng) = prepared(4, 5);
    let spec = HybridSpec::new(4, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong));
    let mut model = spec.build(&mut rng);
    let loss_fn = hqnn_nn::SoftmaxCrossEntropy::new();
    let targets = one_hot(&y_train, 3);

    let logits = model.forward(&x_train, true);
    let (before, grad) = loss_fn.loss_and_grad(&logits, &targets);
    model.backward(&grad);
    let mut opt = Sgd::new(0.05);
    model.apply_gradients(&mut opt);

    let logits = model.forward(&x_train, true);
    let (after, _) = loss_fn.loss_and_grad(&logits, &targets);
    assert!(
        after < before,
        "SGD step along gradient increased loss: {before} → {after}"
    );
}
