//! Integration tests of the extension modules working together: alternative
//! datasets → hybrid training → confusion-matrix evaluation, shot-based
//! readout vs analytic expectations, and noisy layers in full models.

use hqnn_core::prelude::*;
use hqnn_data::synthetic::{circles, gaussian_blobs, two_moons, xor};
use hqnn_nn::ConfusionMatrix;
use hqnn_qsim::measurement::{sample_density, sample_state};

#[test]
fn hybrid_model_solves_two_moons() {
    let mut rng = SeededRng::new(31);
    let ds = two_moons(300, 0.1, &mut rng);
    let (train_set, val_set) = ds.split(0.8, &mut rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());

    let spec = HybridSpec::new(2, 2, QnnTemplate::new(2, 2, EntanglerKind::Strong));
    let mut model = spec.build(&mut rng);
    let mut opt = Adam::new(0.02);
    let config = TrainConfig::fast().with_epochs(50);
    let report = train(
        &mut model,
        &mut opt,
        &x_train,
        train_set.labels(),
        &x_val,
        val_set.labels(),
        2,
        &config,
        &mut rng,
    );
    assert!(
        report.best_val_accuracy >= 0.88,
        "hybrid failed two moons: {report:?}"
    );

    // Confusion matrix of the final model is consistent with accuracy.
    let logits = model.predict(&x_val);
    let cm = ConfusionMatrix::from_logits(&logits, val_set.labels(), 2);
    assert!((cm.accuracy() - accuracy(&logits, val_set.labels())).abs() < 1e-12);
    assert!(cm.macro_f1() > 0.7);
}

#[test]
fn classical_model_solves_circles_and_blobs() {
    for (name, ds) in [
        ("circles", circles(240, 0.45, 0.05, &mut SeededRng::new(5))),
        (
            "blobs",
            gaussian_blobs(240, 3, 0.15, &mut SeededRng::new(6)),
        ),
    ] {
        let mut rng = SeededRng::new(7);
        let (train_set, val_set) = ds.split(0.8, &mut rng);
        let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
        let x_val = standardizer.transform(val_set.features());
        let spec = ClassicalSpec::new(2, vec![8], ds.n_classes());
        let mut model = spec.build(&mut rng);
        let mut opt = Adam::new(0.02);
        let config = TrainConfig::fast().with_epochs(40);
        let report = train(
            &mut model,
            &mut opt,
            &x_train,
            train_set.labels(),
            &x_val,
            val_set.labels(),
            ds.n_classes(),
            &config,
            &mut rng,
        );
        assert!(
            report.best_val_accuracy > 0.9,
            "{name} not solved: {report:?}"
        );
    }
}

#[test]
fn xor_needs_nonlinearity() {
    // A linear classifier cannot beat chance by much on XOR; one hidden
    // layer cracks it — the textbook sanity check of the whole stack.
    let mut rng = SeededRng::new(17);
    let ds = xor(320, 0.15, &mut rng);
    let (train_set, val_set) = ds.split(0.8, &mut rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());
    let run = |hidden: Vec<usize>, rng: &mut SeededRng| {
        let spec = ClassicalSpec::new(2, hidden, 2);
        let mut model = spec.build(rng);
        let mut opt = Adam::new(0.02);
        let config = TrainConfig::fast().with_epochs(40);
        train(
            &mut model,
            &mut opt,
            &x_train,
            train_set.labels(),
            &x_val,
            val_set.labels(),
            2,
            &config,
            rng,
        )
        .best_train_accuracy
    };
    // Judge on training accuracy over the full train split. The best
    // linear boundary on 4-cluster XOR gets exactly 3 of the 4 clusters
    // right (75%); a hidden layer should clear 90%.
    let linear = run(vec![], &mut rng);
    let nonlinear = run(vec![8], &mut rng);
    assert!(
        linear <= 0.78,
        "linear model beat the XOR ceiling: {linear}"
    );
    assert!(nonlinear > 0.9, "MLP should crack XOR, got {nonlinear}");
}

#[test]
fn shot_estimates_agree_with_quantum_layer_outputs() {
    // The analytic ⟨Z⟩ readouts of the quantum layer must match shot-based
    // estimates of the same circuit within statistical error.
    let mut rng = SeededRng::new(41);
    let template = QnnTemplate::new(3, 2, EntanglerKind::Strong);
    let mut layer = QuantumLayer::new(template, &mut rng);
    let x = Matrix::uniform(1, 3, -1.0, 1.0, &mut rng);
    let analytic = hqnn_nn::Layer::forward(&mut layer, &x, false);

    let state = layer.circuit().run(x.row(0), layer.params().as_slice());
    let shots = sample_state(&state, 100_000, &mut rng);
    for wire in 0..3 {
        let err = shots.standard_error_z(wire).max(1e-3);
        assert!(
            (shots.expectation_z(wire) - analytic[(0, wire)]).abs() < 5.0 * err,
            "wire {wire}: shots {} vs analytic {}",
            shots.expectation_z(wire),
            analytic[(0, wire)]
        );
    }
}

#[test]
fn noisy_density_sampling_is_consistent_with_noisy_layer() {
    let mut rng = SeededRng::new(43);
    let template = QnnTemplate::new(2, 1, EntanglerKind::Basic);
    let noise = NoiseModel::depolarizing(0.1);
    let mut layer = NoisyQuantumLayer::new(template, noise.clone(), &mut rng);
    let x = Matrix::uniform(1, 2, -1.0, 1.0, &mut rng);
    let analytic = hqnn_nn::Layer::forward(&mut layer, &x, false);

    let circuit = template.build();
    let rho = DensityMatrix::run_noisy(&circuit, x.row(0), layer.params().as_slice(), &noise);
    let shots = sample_density(&rho, 100_000, &mut rng);
    for wire in 0..2 {
        let err = shots.standard_error_z(wire).max(1e-3);
        assert!(
            (shots.expectation_z(wire) - analytic[(0, wire)]).abs() < 5.0 * err,
            "wire {wire}"
        );
    }
}
