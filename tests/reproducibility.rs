//! Determinism guarantees: identical seeds must reproduce identical
//! datasets, models, training trajectories and reports across the whole
//! stack — the property the paper's 5-run averaging protocol presumes when
//! it attributes result variance to seeds alone.

use hqnn_core::prelude::*;

fn full_run(seed: u64) -> (TrainReport, Vec<f64>) {
    let mut rng = SeededRng::new(seed);
    let config = SpiralConfig::fast(6).with_samples(240);
    let dataset = Dataset::spiral(&config, &mut rng);
    let (train_set, val_set) = dataset.split(0.8, &mut rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());

    let spec = HybridSpec::new(6, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong));
    let mut model = spec.build(&mut rng);
    let mut opt = Adam::new(0.01);
    let cfg = TrainConfig::fast().with_epochs(10);
    let report = train(
        &mut model,
        &mut opt,
        &x_train,
        train_set.labels(),
        &x_val,
        val_set.labels(),
        3,
        &cfg,
        &mut rng,
    );
    // Capture a fingerprint of the trained weights.
    let mut weights = Vec::new();
    model.visit_params(&mut |v, _g| weights.extend_from_slice(v.as_slice()));
    (report, weights)
}

#[test]
fn identical_seeds_reproduce_training_exactly() {
    let (report_a, weights_a) = full_run(31);
    let (report_b, weights_b) = full_run(31);
    assert_eq!(report_a, report_b);
    assert_eq!(weights_a, weights_b);
}

#[test]
fn different_seeds_produce_different_trajectories() {
    let (_, weights_a) = full_run(31);
    let (_, weights_b) = full_run(32);
    assert_ne!(weights_a, weights_b);
}

#[test]
fn dataset_generation_is_independent_of_model_code() {
    // The dataset depends only on its own RNG stream — consuming extra
    // random numbers elsewhere must not alter it.
    let make = |pre_draws: usize| {
        let parent = SeededRng::new(77);
        let mut other = parent.split(1);
        for _ in 0..pre_draws {
            let _ = other.unit();
        }
        let mut data_rng = parent.split(2);
        Dataset::spiral(&SpiralConfig::fast(5), &mut data_rng)
    };
    assert_eq!(make(0), make(100));
}

#[test]
fn split_streams_isolate_runs() {
    // Simulate the search protocol's per-run streams: run k uses
    // parent.split(k). Re-running run 3 alone must match run 3 in sequence.
    let parent = SeededRng::new(55);
    let sequence: Vec<f64> = (0..5)
        .map(|k| {
            let mut run_rng = parent.split(k);
            run_rng.uniform(0.0, 1.0)
        })
        .collect();
    let mut run3 = parent.split(3);
    assert_eq!(run3.uniform(0.0, 1.0), sequence[3]);
}

#[test]
fn quantum_layer_forward_is_deterministic() {
    let template = QnnTemplate::new(4, 3, EntanglerKind::Basic);
    let mut rng_a = SeededRng::new(9);
    let mut rng_b = SeededRng::new(9);
    let mut layer_a = QuantumLayer::new(template, &mut rng_a);
    let mut layer_b = QuantumLayer::new(template, &mut rng_b);
    let x = Matrix::uniform(6, 4, -1.0, 1.0, &mut SeededRng::new(1));
    assert_eq!(layer_a.forward(&x, false), layer_b.forward(&x, false));
}
