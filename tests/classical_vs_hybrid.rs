//! Comparative invariants between classical and hybrid models — the
//! structural facts behind the paper's Figures 9–10 and Table I, asserted
//! analytically (no training required).

use hqnn_core::prelude::*;

fn sel(features: usize) -> HybridSpec {
    HybridSpec::new(features, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong))
}

fn bel(features: usize, qubits: usize, depth: usize) -> HybridSpec {
    HybridSpec::new(
        features,
        3,
        QnnTemplate::new(qubits, depth, EntanglerKind::Basic),
    )
}

#[test]
fn sel_flops_growth_rate_is_below_classical_when_classical_grows() {
    // Classical networks that need to grow (more/wider layers) to follow
    // problem complexity increase their FLOPs faster than an SEL hybrid
    // whose quantum layer never changes — the Fig. 10(a) shape.
    let cost = CostModel::default();
    let classical_lo = ClassicalSpec::new(10, vec![6], 3).flops(&cost).total();
    let classical_hi = ClassicalSpec::new(110, vec![10, 8], 3).flops(&cost).total();
    let sel_lo = sel(10).flops(&cost).total();
    let sel_hi = sel(110).flops(&cost).total();

    let classical_rate = (classical_hi as f64 - classical_lo as f64) / classical_lo as f64;
    let sel_rate = (sel_hi as f64 - sel_lo as f64) / sel_lo as f64;
    assert!(
        sel_rate < classical_rate,
        "SEL rate {sel_rate:.2} ≥ classical rate {classical_rate:.2}"
    );
}

#[test]
fn sel_hybrid_beats_growing_classical_at_high_complexity() {
    // At 110 features, a classical model that had to grow past ~2 hidden
    // layers costs more FLOPs than the fixed SEL hybrid — the crossover the
    // paper's abstract reports (~7.5% fewer FLOPs; our costing shows the
    // same direction).
    let cost = CostModel::default();
    let classical = ClassicalSpec::new(110, vec![10, 8], 3).flops(&cost).total();
    let hybrid = sel(110).flops(&cost).total();
    assert!(
        hybrid < classical,
        "SEL hybrid {hybrid} ≥ classical {classical} at 110 features"
    );
}

#[test]
fn hybrid_parameter_counts_are_below_classical_counterparts() {
    // Fig. 9: hybrids need fewer trainable parameters at every level,
    // because the quantum layer replaces wide hidden layers.
    for features in [10usize, 40, 80, 110] {
        let classical = ClassicalSpec::new(features, vec![8, 6], 3).param_count();
        let hybrid = sel(features).param_count();
        assert!(
            hybrid < classical,
            "at {features} features: hybrid {hybrid} ≥ classical {classical}"
        );
    }
}

#[test]
fn sel_parameter_growth_comes_only_from_the_input_layer() {
    // Fig. 9 bottom panel: SEL param growth across complexity levels is
    // exactly the input layer's growth (the quantum layer is unchanged).
    let p10 = sel(10).param_count();
    let p110 = sel(110).param_count();
    // Input layer grows by (110−10) features × 3 qubits weights.
    assert_eq!(p110 - p10, 100 * 3);
}

#[test]
fn bel_needs_architecture_growth_but_sel_does_not() {
    // Table I: BEL escalates (3,2) → (3,4) → (4,4) as features grow; its QL
    // FLOPs grow accordingly, while SEL's stay flat.
    let cost = CostModel::default();
    let bel_ql_low = bel(10, 3, 2).flops(&cost).quantum;
    let bel_ql_mid = bel(80, 3, 4).flops(&cost).quantum;
    let bel_ql_high = bel(110, 4, 4).flops(&cost).quantum;
    assert!(bel_ql_low < bel_ql_mid);
    assert!(bel_ql_mid < bel_ql_high);

    let sel_ql_low = sel(10).flops(&cost).quantum;
    let sel_ql_high = sel(110).flops(&cost).quantum;
    assert_eq!(sel_ql_low, sel_ql_high);
}

#[test]
fn encoding_cost_tracks_qubit_count_not_feature_count() {
    // Table I Enc column: 466 for every 3-qubit row, 1132 for the 4-qubit
    // row — encoding cost is a function of qubits, not features.
    let cost = CostModel::default();
    let enc_3q_10f = bel(10, 3, 2).flops(&cost).encoding;
    let enc_3q_80f = bel(80, 3, 4).flops(&cost).encoding;
    let enc_4q_110f = bel(110, 4, 4).flops(&cost).encoding;
    assert_eq!(enc_3q_10f, enc_3q_80f);
    assert!(enc_4q_110f > enc_3q_10f);
}

#[test]
fn classical_flops_dominate_hybrid_totals_at_high_feature_counts() {
    // Table I at 110 features: the classical + encoding share is the
    // majority of an SEL hybrid's total cost.
    let cost = CostModel::default();
    let f = sel(110).flops(&cost);
    assert!(
        f.classical + f.encoding > f.quantum,
        "CL+Enc = {} ≤ QL = {}",
        f.classical + f.encoding,
        f.quantum
    );
}

#[test]
fn sel_is_more_expressive_per_layer_than_bel() {
    // 3 rotations per qubit per layer vs 1 — the structural reason the
    // paper gives for SEL's robustness to problem complexity.
    for qubits in 2..=5 {
        assert_eq!(
            EntanglerKind::Strong.params_per_layer(qubits),
            3 * EntanglerKind::Basic.params_per_layer(qubits)
        );
    }
}

#[test]
fn paper_table_one_hybrid_configs_price_consistently() {
    // The four BEL rows and four SEL rows of Table I, priced by our model:
    // totals must be strictly increasing down each block, like the paper's.
    let cost = CostModel::default();
    let bel_rows = [bel(10, 3, 2), bel(40, 3, 2), bel(80, 3, 4), bel(110, 4, 4)];
    let totals: Vec<u64> = bel_rows.iter().map(|s| s.flops(&cost).total()).collect();
    assert!(totals.windows(2).all(|w| w[0] < w[1]), "{totals:?}");

    let sel_rows = [sel(10), sel(40), sel(80), sel(110)];
    let totals: Vec<u64> = sel_rows.iter().map(|s| s.flops(&cost).total()).collect();
    assert!(totals.windows(2).all(|w| w[0] < w[1]), "{totals:?}");
}
