# Convenience targets for the hqnn workspace.

CARGO ?= cargo
PROFILE_DIR ?= experiment-results

.PHONY: build test repro profile smoke obs-smoke bench bench-check bench-smoke bench-baseline bench-trend lint sched-check fmt clippy clean

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

# Full fast-profile reproduction (tables + cached study).
repro:
	$(CARGO) run -p hqnn-bench --release --bin repro

# Profiled reproduction: span-tree profile on stderr (HQNN_LOG=debug shows
# every span/counter event) and a machine-readable JSONL trace on disk.
profile:
	$(CARGO) run -p hqnn-bench --release --bin repro -- \
		--log-json $(PROFILE_DIR)/repro-trace.jsonl
	@echo "telemetry trace written to $(PROFILE_DIR)/repro-trace.jsonl"

# Seconds-scale end-to-end check (used by CI).
smoke:
	$(CARGO) run -p hqnn-bench --release --bin repro -- --smoke --fresh \
		--cache /tmp/hqnn-smoke --log-json /tmp/hqnn-smoke.jsonl

# Tiny traced study (debug-level spans, alloc counting on), then every
# hqnn-obs subcommand exercised against the resulting JSONL trace. The
# critical-path report lands next to the trace for CI artifact upload.
OBS_DIR ?= /tmp/hqnn-obs-smoke
obs-smoke:
	mkdir -p $(OBS_DIR)
	HQNN_LOG=debug HQNN_ALLOC=1 $(CARGO) run -p hqnn-bench --release --bin repro -- \
		--smoke --fresh --cache $(OBS_DIR)/study --log-json $(OBS_DIR)/trace.jsonl
	$(CARGO) run -q -p hqnn-obs --release --bin hqnn-obs -- critical-path $(OBS_DIR)/trace.jsonl \
		| tee $(OBS_DIR)/critical-path.txt
	$(CARGO) run -q -p hqnn-obs --release --bin hqnn-obs -- tree $(OBS_DIR)/trace.jsonl
	$(CARGO) run -q -p hqnn-obs --release --bin hqnn-obs -- diff $(OBS_DIR)/trace.jsonl $(OBS_DIR)/trace.jsonl
	$(CARGO) run -q -p hqnn-obs --release --bin hqnn-obs -- grep $(OBS_DIR)/trace.jsonl event=span
	$(CARGO) run -q -p hqnn-obs --release --bin hqnn-obs -- flamegraph-diff \
		$(OBS_DIR)/trace.jsonl $(OBS_DIR)/trace.jsonl --weight bytes
	@echo "obs-smoke artifacts in $(OBS_DIR)"

# Microbenchmark suite: appends bench/history/BENCH_<stamp>.json with run
# manifest, median/MAD timings, throughput, and measured-vs-analytic FLOPs
# efficiency. Commit the new entry to extend the repo's perf record.
bench:
	$(CARGO) run -p hqnn-perfbench --release --bin perfbench -- --out bench/history

# Same run, then gate against the committed baseline: exits non-zero when
# any benchmark regresses beyond its noise-aware threshold.
bench-check:
	$(CARGO) run -p hqnn-perfbench --release --bin perfbench -- --check

# CI scale: identical workloads, minimum iterations (seconds total).
bench-smoke:
	$(CARGO) run -p hqnn-perfbench --release --bin perfbench -- --smoke

# Rewrite bench/baseline.json from a fresh full-scale run on this machine.
bench-baseline:
	$(CARGO) run -p hqnn-perfbench --release --bin perfbench -- --update-baseline

# Per-benchmark trajectory report over the committed bench/history/ series.
bench-trend:
	$(CARGO) run -p hqnn-perfbench --release --bin perfbench -- --trend

# Static analysis gate: the workspace invariant linter (determinism, panic
# hygiene, env registry, span naming — see `hqnn-lint --list-rules`), the
# circuit-IR verifier smoke tests, and clippy with warnings denied.
lint:
	$(CARGO) run -q -p hqnn-lint --bin hqnn-lint
	$(CARGO) test -q -p hqnn-qsim --test circuit_verify
	$(CARGO) clippy --workspace --all-targets -q -- -D warnings

# Schedule-permutation model check: replay the parallel maps under >= 50
# seeded adversarial interleavings and assert bitwise-identical outputs
# plus budget/live-concurrency invariants (the CI hard gate, locally).
sched-check:
	HQNN_THREADS=4 $(CARGO) test -q -p hqnn-runtime --test schedule_permutation

fmt:
	$(CARGO) fmt --all

clippy:
	$(CARGO) clippy --workspace --all-targets

clean:
	$(CARGO) clean
