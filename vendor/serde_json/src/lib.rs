//! Offline stand-in for [serde_json](https://docs.rs/serde_json).
//!
//! Implements exactly the surface this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], and a dynamic [`Value`] — over the
//! vendored `serde` stub's `Content` tree. Floats are written with Rust's
//! shortest round-trip `Display` and read back with the stdlib's
//! correctly-rounded parser, so `f64` values survive a JSON round trip
//! bit-exactly (the workspace asserts this for model persistence).

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Dynamic JSON value (the vendored `Content` tree round-trips through
/// itself, so it doubles as `serde_json::Value`).
pub type Value = Content;

/// Serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_content(&content).map_err(Error::from)
}

/// Converts any serializable value into a dynamic [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_content())
}

/// Reconstructs a typed value from a dynamic [`Value`].
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_content(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // Matches serde_json: non-finite floats have no JSON representation.
        out.push_str("null");
        return;
    }
    let s = v.to_string();
    out.push_str(&s);
    // Keep floats syntactically floats so readers preserve the distinction.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(Error::new)?;
        let v = u32::from_str_radix(s, 16).map_err(Error::new)?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if is_float {
            let v: f64 = text.parse().map_err(Error::new)?;
            Ok(Content::F64(v))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Ok(Content::I64(v)),
                Err(_) => text.parse::<f64>().map(Content::F64).map_err(Error::new),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Content::U64(v)),
                Err(_) => text.parse::<f64>().map(Content::F64).map_err(Error::new),
            }
        }
    }
}
