//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! Implements the API subset this workspace's benches use —
//! `bench_function`, `benchmark_group`, `bench_with_input`, `sample_size`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple median-of-samples timer instead of criterion's
//! statistical machinery. Good enough to compare orders of magnitude and to
//! keep `cargo bench` runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Runs routines handed to [`Bencher::iter`] and records elapsed time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`: a few warmup calls, then `sample_count` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            eprintln!("bench {label:<50} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        eprintln!(
            "bench {label:<50} median {median:>12?}  (min {min:?}, max {max:?}, n={})",
            self.samples.len()
        );
        self.samples.clear();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("HQNN_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        b.report(&id.label);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    pub fn finish(self) {}
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
