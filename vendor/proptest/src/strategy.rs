//! Strategy trait and combinators.

use crate::collection::SizeRange;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::rc::Rc;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a cloneable sampler.
pub trait Strategy: Clone {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Debug,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, resampling up to a retry cap.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        let inner = self;
        BoxedStrategy {
            sampler: Rc::new(move |rng| inner.sample(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].sample(rng)
    }
}

/// See [`crate::collection::vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max_inclusive {
            self.size.min
        } else {
            self.size.min + rng.below(self.size.max_inclusive - self.size.min + 1)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span as usize) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
