//! Offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! Runs each property over a deterministic stream of random cases (no
//! shrinking — the failing input is printed verbatim instead). Implements the
//! strategy surface this workspace's tests use: ranges, tuples, `Just`,
//! `prop_map`, `prop_flat_map`, `prop_oneof!`, `collection::vec`, and
//! `bool::ANY`, plus the `proptest!`/`prop_assert*` macros and
//! `ProptestConfig::with_cases`. Case count defaults to 64 (override with the
//! `PROPTEST_CASES` env var) to keep the simulator-heavy suites fast.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Strategy size specification: a fixed length or a length range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub(crate) min: usize,
        pub(crate) max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// `Vec` strategy: each element drawn from `element`, length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Copy, Clone, Debug)]
    pub struct BoolStrategy;

    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// One random strategy choice among several (no weights — the workspace
/// doesn't use them).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(
                    &__config,
                    ($($strategy,)+),
                    |($($pat,)+)| { $body },
                );
            }
        )*
    };
}
