//! Deterministic case runner.

use crate::strategy::Strategy;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (stands in for proptest's `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 64 cases, overridable with `PROPTEST_CASES` (real proptest defaults to
    /// 256; the lower default keeps the simulator-heavy suites quick).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Config { cases }
    }
}

/// Deterministic xoshiro256** stream used for sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Samples `config.cases` inputs from `strategy` and runs `test` on each.
/// On panic, reports the case index and the input, then re-panics.
pub fn run<S: Strategy>(config: &Config, strategy: S, test: impl Fn(S::Value)) {
    // Fixed base seed: failures reproduce exactly across runs and machines.
    let mut rng = TestRng::from_seed(0x00c0_ffee_5eed);
    for case in 0..config.cases {
        let value = strategy.sample(&mut rng);
        let rendered = format!("{value:?}");
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| test(value))) {
            eprintln!(
                "proptest case {}/{} failed with input: {}",
                case + 1,
                config.cases,
                rendered
            );
            resume_unwind(panic);
        }
    }
}
