//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build container has no network access and no cached registry, so the
//! workspace vendors the *subset* of serde it actually uses: the
//! `Serialize`/`Deserialize` traits, derive macros for plain structs and
//! enums, and impls for the primitive/container types that appear in this
//! repo's data model. Instead of serde's zero-copy visitor architecture,
//! everything routes through a self-describing [`Content`] tree — dramatically
//! simpler, and fully adequate for the JSON persistence and telemetry logging
//! this workspace does.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) are provided by the
//! sibling `serde_derive` stub and generate `to_content`/`from_content`
//! implementations following serde's standard externally-tagged data model:
//! structs → maps, unit variants → strings, newtype variants →
//! `{"Variant": value}`, tuple variants → `{"Variant": [..]}`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialized value, the interchange format between
/// `Serialize`/`Deserialize` impls and data formats such as `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    Bool(bool),
    /// Unsigned integers (u8..u64, usize).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Ordered key–value map (struct fields, enum tagging, JSON objects).
    Map(Vec<(String, Content)>),
}

/// Error produced when reconstructing a value from a [`Content`] tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl Content {
    /// The JSON-ish type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) => "unsigned integer",
            Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }

    /// Expects a map, with `ty` naming the target type for error messages.
    pub fn as_map(&self, ty: &str) -> Result<&[(String, Content)], DeError> {
        match self {
            Content::Map(entries) => Ok(entries),
            other => Err(DeError(format!(
                "expected object for `{ty}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Expects a sequence of exactly `len` items.
    pub fn as_tuple(&self, len: usize, ty: &str) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(items) if items.len() == len => Ok(items),
            Content::Seq(items) => Err(DeError(format!(
                "expected array of length {len} for `{ty}`, found length {}",
                items.len()
            ))),
            other => Err(DeError(format!(
                "expected array for `{ty}`, found {}",
                other.kind()
            ))),
        }
    }
}

/// Looks up and deserializes a struct field by name (derive-generated code).
pub fn field<T: Deserialize>(
    entries: &[(String, Content)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_content(v).map_err(|e| DeError(format!("in field `{ty}.{name}`: {}", e.0)))
        }
        // Missing key: types with a null form (notably `Option`) default, so
        // structs can grow optional fields without invalidating cached JSON.
        None => T::from_content(&Content::Null)
            .map_err(|_| DeError(format!("missing field `{name}` for `{ty}`"))),
    }
}

/// Like [`field`], but a missing key yields `T::default()` — the accessor
/// behind `#[serde(default)]`, used when a struct grows a field whose type
/// has no null form (e.g. `bool`) and old serialized data must keep parsing.
pub fn field_or_default<T: Deserialize + Default>(
    entries: &[(String, Content)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_content(v).map_err(|e| DeError(format!("in field `{ty}.{name}`: {}", e.0)))
        }
        None => Ok(T::default()),
    }
}

/// Decodes an externally-tagged enum: either a bare string (unit variant) or
/// a single-entry map `{variant: payload}`. Returns `(variant, payload)`,
/// with `Content::Null` standing in for a missing payload.
pub fn variant<'c>(content: &'c Content, ty: &str) -> Result<(&'c str, &'c Content), DeError> {
    const UNIT: &Content = &Content::Null;
    match content {
        Content::Str(name) => Ok((name.as_str(), UNIT)),
        Content::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(DeError(format!(
            "expected enum `{ty}` (string or single-key object), found {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for primitives and containers
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                        v as u64
                    }
                    ref other => {
                        return Err(DeError(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError(format!("{v} out of range for i64")))?,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    ref other => {
                        return Err(DeError(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    ref other => Err(DeError(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_content() {
                        Content::Str(s) => s,
                        other => render_key(&other),
                    };
                    (key, v.to_content())
                })
                .collect(),
        )
    }
}

fn render_key(c: &Content) -> String {
    match c {
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        Content::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = c.as_tuple(LEN, "tuple")?;
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(DeError(format!("expected null, found {}", other.kind()))),
        }
    }
}

// `Content` round-trips through itself, giving data formats a `Value`-like
// dynamic type for free.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}
