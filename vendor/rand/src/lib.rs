//! Offline stand-in for the [rand](https://docs.rs/rand) crate.
//!
//! Provides the exact API subset `hqnn-tensor` uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`RngExt::random`],
//! [`RngExt::random_range`], and `seq::SliceRandom::shuffle` — backed by
//! xoshiro256** seeded through SplitMix64. Streams are deterministic and
//! platform-independent (the workspace's reproducibility tests depend on
//! that) but are *not* bit-compatible with upstream `StdRng`; all golden
//! numbers in this repo were produced with this generator.

/// A source of random 64-bit words.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng + Sized {
    /// Samples a value from the type's canonical distribution
    /// (uniform `[0, 1)` for floats, full range for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng> RngExt for R {}

/// Distributions for [`RngExt::random`].
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounding (Lemire); bias is negligible for
                // the small spans this workspace samples.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through SplitMix64, as rand does.
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^ (x >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low.
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice in order");
    }
}
