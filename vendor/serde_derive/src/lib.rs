//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize`/`serde::Deserialize` impls (the `Content`
//! tree protocol of the vendored `serde` stub) for the shapes this workspace
//! actually uses: non-generic structs with named fields, tuple structs, and
//! enums whose variants are unit, tuple, or struct-like. The macro parses the
//! raw `TokenStream` by hand — only field *names* and variant *arities* are
//! needed, never types, because the generated code lets inference pick the
//! right `from_content` at each position.
//!
//! One field attribute is honoured: `#[serde(default)]` makes a missing key
//! fall back to `Default::default()` on deserialize (via
//! `::serde::field_or_default`), so structs can grow required-looking fields
//! without invalidating previously written JSON. Any other `#[serde(...)]`
//! content is a compile error rather than a silent no-op.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Copy, Clone, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// A named struct/variant field: its name and whether `#[serde(default)]`
/// lets it fall back to `Default::default()` when the key is absent.
struct Field {
    name: String,
    default: bool,
}

enum Shape {
    /// `struct S { a, b }`
    NamedStruct(Vec<Field>),
    /// `struct S(T, U);` — arity only.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// Enum variants: (name, fields)
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&name, &shape),
                Mode::Deserialize => gen_deserialize(&name, &shape),
            };
            code.parse()
                .expect("serde_derive stub generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive stub: expected `struct` or `enum`".into()),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive stub: expected type name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stub: generic type `{name}` is not supported"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(tuple_arity(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            _ => Err(format!("serde_derive stub: malformed struct `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            _ => Err(format!("serde_derive stub: malformed enum `{name}`")),
        },
        other => Err(format!("serde_derive stub: unsupported item `{other}`")),
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Whether an attribute group (the `[...]` tokens after `#`) is a
/// `serde(...)` helper, and if so, whether it is exactly `serde(default)`.
/// Anything else inside `serde(...)` is unsupported and must not be silently
/// ignored.
fn parse_serde_attr(group: &proc_macro::Group) -> Result<Option<bool>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(None),
    }
    match tokens.get(1) {
        Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            match (args.len(), args.first()) {
                (1, Some(TokenTree::Ident(id))) if id.to_string() == "default" => Ok(Some(true)),
                _ => Err("serde_derive stub: only `#[serde(default)]` is supported".into()),
            }
        }
        _ => Err("serde_derive stub: malformed `#[serde(...)]` attribute".into()),
    }
}

/// Field names from `{ a: T, b: U }` — types are skipped with angle-bracket
/// depth tracking so `Vec<(usize, Pauli)>` style nesting parses correctly.
/// `#[serde(default)]` on a field is recorded; other attributes are skipped.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let mut default = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if parse_serde_attr(g)? == Some(true) {
                            default = true;
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(
                        tokens.get(i),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde_derive stub: expected field name".into()),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde_derive stub: expected `:` after `{field}`")),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name: field,
            default,
        });
    }
    Ok(fields)
}

/// Number of elements in a parenthesized field list (top-level commas).
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut arity = 1;
    for (idx, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && idx + 1 < tokens.len() =>
            {
                arity += 1;
            }
            _ => {}
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde_derive stub: expected variant name".into()),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err("serde_derive stub: explicit discriminants are not supported".into());
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("({f:?}.to_string(), ::serde::Serialize::to_content(&self.{f}))")
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => {
                        format!("{name}::{v} => ::serde::Content::Str({v:?}.to_string()),")
                    }
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Content::Map(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_content(__f0))]),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Content::Map(vec![({v:?}.to_string(), \
                             ::serde::Content::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let binds = names.join(", ");
                        let entries: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_content({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(vec![\
                             ({v:?}.to_string(), ::serde::Content::Map(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

/// Which `::serde` accessor the deserializer uses for a named field.
fn field_getter(f: &Field) -> &'static str {
    if f.default {
        "field_or_default"
    } else {
        "field"
    }
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let (name_f, getter) = (&f.name, field_getter(f));
                    format!("{name_f}: ::serde::{getter}(__m, {name_f:?}, {name:?})?")
                })
                .collect();
            format!(
                "let __m = __c.as_map({name:?})?;\nOk({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::from_content(__c)?))"),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__t[{i}])?"))
                .collect();
            format!(
                "let __t = __c.as_tuple({n}, {name:?})?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| {
                    let path = format!("{name}::{v}");
                    let label = format!("{name}::{v}");
                    match vs {
                        VariantShape::Unit => format!("{v:?} => Ok({path}),"),
                        VariantShape::Tuple(1) => format!(
                            "{v:?} => Ok({path}(::serde::Deserialize::from_content(__payload)?)),"
                        ),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&__t[{i}])?"))
                                .collect();
                            format!(
                                "{v:?} => {{ let __t = __payload.as_tuple({n}, {label:?})?; \
                                 Ok({path}({})) }}",
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let (name_f, getter) = (&f.name, field_getter(f));
                                    format!(
                                        "{name_f}: ::serde::{getter}(__m, {name_f:?}, {label:?})?"
                                    )
                                })
                                .collect();
                            format!(
                                "{v:?} => {{ let __m = __payload.as_map({label:?})?; \
                                 Ok({path} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__variant, __payload) = ::serde::variant(__c, {name:?})?;\n\
                 match __variant {{ {} __other => Err(::serde::DeError(format!(\
                 \"unknown variant `{{}}` for `{name}`\", __other))), }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
